package adapt_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"xplacer/internal/adapt"
	"xplacer/internal/apps/lulesh"
	"xplacer/internal/core"
	"xplacer/internal/machine"
)

// mpConfig is the multi-phase LULESH workload the end-to-end comparison
// runs: three solve→analysis cycles whose phases are long enough for the
// controller to confirm and apply per-phase placements.
func mpConfig() lulesh.MultiPhaseConfig {
	return lulesh.MultiPhaseConfig{
		Elems:         65536,
		Cycles:        3,
		SolveSteps:    10,
		AnalysisSteps: 4,
	}
}

// adaptConfig is the controller tuning used by the end-to-end runs. The
// window must exceed the longest workload step (a managed-memory solve
// step runs ~1ms here): sub-step windows fragment a steady per-step
// signal into alternating win/quiet windows that never confirm.
func adaptConfig() adapt.Config {
	return adapt.Config{
		Window:     machine.Millisecond,
		MinGainPct: 2,
		Confirm:    2,
		Cooldown:   2,
		Workers:    4,
	}
}

func runStatic(t *testing.T, plat *machine.Platform, static lulesh.StaticPolicy) (machine.Duration, lulesh.MultiPhaseResult) {
	t.Helper()
	var mr lulesh.MultiPhaseResult
	rr, err := core.Run(plat, false, func(s *core.Session) error {
		cfg := mpConfig()
		cfg.Static = static
		var err error
		mr, err = lulesh.RunMultiPhase(s, cfg)
		return err
	})
	if err != nil {
		t.Fatalf("%s static %s: %v", plat.Name, static, err)
	}
	return rr.SimTime, mr
}

func runAdaptive(t *testing.T, plat *machine.Platform, cfg adapt.Config) (machine.Duration, lulesh.MultiPhaseResult, *adapt.Report) {
	t.Helper()
	var mr lulesh.MultiPhaseResult
	var rep *adapt.Report
	rr, err := core.Run(plat, false, func(s *core.Session) error {
		ctrl := adapt.Attach(s.Ctx, cfg)
		var err error
		mr, err = lulesh.RunMultiPhase(s, mpConfig())
		if err != nil {
			return err
		}
		if err := ctrl.Finish(); err != nil {
			return err
		}
		rep = ctrl.Report()
		return nil
	})
	if err != nil {
		t.Fatalf("%s adaptive: %v", plat.Name, err)
	}
	return rr.SimTime, mr, rep
}

// TestDecisionLogDeterminism: the controller's decision log — and
// therefore the run it steers — is byte-identical across candidate
// worker-pool sizes. The worker pool only parallelizes candidate
// replays; ranking and hysteresis consume their results in a fixed
// order.
func TestDecisionLogDeterminism(t *testing.T) {
	plat := machine.IntelPascal()
	var want []byte
	var wantTime machine.Duration
	for _, workers := range []int{1, 8} {
		cfg := adaptConfig()
		cfg.Workers = workers
		simTime, _, rep := runAdaptive(t, plat, cfg)
		b, err := json.Marshal(rep)
		if err != nil {
			t.Fatalf("workers=%d: marshal report: %v", workers, err)
		}
		if want == nil {
			want, wantTime = b, simTime
			continue
		}
		if simTime != wantTime {
			t.Errorf("workers=%d: sim time %v, want %v", workers, simTime, wantTime)
		}
		if !bytes.Equal(b, want) {
			t.Errorf("workers=%d: decision log differs:\n%s\nvs workers=1:\n%s", workers, b, want)
		}
	}
}

// TestAdaptiveBeatsStaticPlacements is the end-to-end acceptance of the
// closed-loop controller: on the multi-phase LULESH proxy, whose solve and
// analysis phases want opposite placements, the controller's end-to-end
// simulated time beats every static whole-run placement on every machine
// preset — while producing bit-identical numerical results.
func TestAdaptiveBeatsStaticPlacements(t *testing.T) {
	for _, plat := range machine.Platforms() {
		t.Run(plat.Name, func(t *testing.T) {
			adaptTime, adaptRes, rep := runAdaptive(t, plat, adaptConfig())
			if rep.Switches == 0 {
				t.Errorf("controller applied no placements (windows: %d)", len(rep.Windows))
			}
			t.Logf("%-14s adaptive: %v (switches %d, windows %d, applied %v)",
				plat.Name, adaptTime, rep.Switches, len(rep.Windows), rep.Applied)
			for _, static := range lulesh.StaticPolicies() {
				simTime, staticRes := runStatic(t, plat, static)
				t.Logf("%-14s static %-14s: %v (adaptive is %.2fx)",
					plat.Name, static, simTime, float64(simTime)/float64(adaptTime))
				if adaptTime >= simTime {
					t.Errorf("adaptive (%v) did not beat static %s (%v)", adaptTime, static, simTime)
				}
				if staticRes.FinalOriginEnergy != adaptRes.FinalOriginEnergy {
					t.Errorf("static %s final energy %v != adaptive %v",
						static, staticRes.FinalOriginEnergy, adaptRes.FinalOriginEnergy)
				}
				if staticRes.Checksum != adaptRes.Checksum {
					t.Errorf("static %s checksum %v != adaptive %v",
						static, staticRes.Checksum, adaptRes.Checksum)
				}
			}
		})
	}
}
