// Package adapt is the closed-loop adaptive placement controller: it
// turns the what-if engine's offline capture→predict→apply workflow into
// an online one. A Controller attached to a running context rotates
// capture windows on the simulated clock, closes each window at a
// kernel-launch drain boundary, advances an incremental what-if analysis
// (whatif.Incremental) over the window's events, and applies winning
// placements mid-run through cuda.Context.ApplyPlacement — behind
// hysteresis, so oscillating phases do not thrash migrations.
//
// The controller ranks candidates by *window-local* gain: the difference
// between what the observed run spent in the window and what a candidate
// placement would have spent in it (deltas of the cumulative predictions
// between consecutive windows). That is what makes it phase-aware — a
// placement that lost the whole-run ranking can win the current phase,
// and vice versa — where whole-run gains wash phase changes out.
//
// Everything runs at drain boundaries, off the per-element trace hot
// path: the only per-launch cost is a nil-check and a clock compare.
package adapt

import (
	"fmt"
	"io"
	"sort"

	"xplacer/internal/cuda"
	"xplacer/internal/machine"
	"xplacer/internal/timeline"
	"xplacer/internal/um"
	"xplacer/internal/whatif"
)

// Config tunes the controller.
type Config struct {
	// Window is the minimum simulated time between analyses; a window
	// closes at the first kernel-launch drain boundary past it. <= 0 means
	// DefaultWindow.
	Window machine.Duration
	// MinGainPct is the hysteresis threshold: a candidate must predict at
	// least this percentage of the window's observed time as saving to
	// count. < 0 means 0 (any predicted gain counts); 0 means
	// DefaultMinGainPct.
	MinGainPct float64
	// Confirm is the number of consecutive windows the same candidate must
	// win (above threshold) before it is applied. < 1 means
	// DefaultConfirm.
	Confirm int
	// Cooldown is the number of windows a label is frozen after a
	// placement was applied to it. < 0 means 0; 0 means DefaultCooldown.
	Cooldown int
	// Workers sets the candidate-replay worker pool size (< 1 means
	// GOMAXPROCS). The decision log is byte-identical across worker
	// counts.
	Workers int
}

// Controller defaults.
const (
	DefaultWindow     = 2 * machine.Millisecond
	DefaultMinGainPct = 3.0
	DefaultConfirm    = 2
	DefaultCooldown   = 2
)

func (cfg Config) withDefaults() Config {
	if cfg.Window <= 0 {
		cfg.Window = DefaultWindow
	}
	if cfg.MinGainPct == 0 {
		cfg.MinGainPct = DefaultMinGainPct
	} else if cfg.MinGainPct < 0 {
		cfg.MinGainPct = 0
	}
	if cfg.Confirm < 1 {
		cfg.Confirm = DefaultConfirm
	}
	if cfg.Cooldown == 0 {
		cfg.Cooldown = DefaultCooldown
	} else if cfg.Cooldown < 0 {
		cfg.Cooldown = 0
	}
	return cfg
}

// Decision is one hysteresis-relevant entry of the decision log: a
// candidate above threshold confirming, being applied, or being blocked
// by a cooldown. Windows where a label's best candidate is the current
// placement or below threshold log nothing.
type Decision struct {
	Window int    `json:"window"`
	Label  string `json:"label"`
	// Policy is the winning candidate placement for the window.
	Policy string `json:"policy"`
	// GainPct is the candidate's predicted saving as a percentage of the
	// window's observed time.
	GainPct float64 `json:"gain_pct"`
	// PredDelta is the candidate's predicted absolute saving over the
	// window (positive = faster than observed).
	PredDelta machine.Duration `json:"pred_delta_ps"`
	// Action is "confirm" (streak building), "apply" (placement changed),
	// or "cooldown" (won but frozen after a recent change).
	Action string `json:"action"`
	// Streak is the confirmation streak after this window; CooldownLeft
	// the remaining frozen windows (cooldown entries only).
	Streak       int `json:"streak,omitempty"`
	CooldownLeft int `json:"cooldown_left,omitempty"`
}

// Window summarizes one closed capture window.
type Window struct {
	Index int `json:"index"`
	// Start and End delimit the window on the simulated timeline (replay
	// totals at the previous and this close).
	Start machine.Duration `json:"start_ps"`
	End   machine.Duration `json:"end_ps"`
	// Events is the number of timeline events the window ingested.
	Events int `json:"events"`
	// Observed is the window's observed duration (End - Start).
	Observed  machine.Duration `json:"observed_ps"`
	Decisions []Decision       `json:"decisions,omitempty"`
}

// Report is the controller's run summary: configuration, per-window
// decision log, and the final applied placements.
type Report struct {
	WindowLen  machine.Duration `json:"window_ps"`
	MinGainPct float64          `json:"min_gain_pct"`
	Confirm    int              `json:"confirm"`
	Cooldown   int              `json:"cooldown"`
	Windows    []Window         `json:"windows"`
	// Applied maps each label the controller changed to its final policy;
	// Switches counts every mid-run placement change.
	Applied  map[string]string `json:"applied,omitempty"`
	Switches int               `json:"switches"`
}

// hysteresis is one label's debouncing state machine: a candidate must
// beat the threshold for Confirm consecutive windows to be applied, and
// an applied label is frozen for Cooldown windows.
type hysteresis struct {
	current   string // applied policy ("" = the program's own placement)
	candidate string
	streak    int
	cooldown  int
}

// action is what one hysteresis step decided.
type action int

const (
	actNone action = iota
	actConfirm
	actApply
	actCooldown
)

// step feeds one window's winning candidate (best, at gainPct of the
// window's observed time) into the state machine and returns the action.
// A sub-threshold window, or one the current placement wins, resets the
// streak: Confirm means *consecutive* wins, so a placement is only
// applied when its signal persists across every window of the phase.
// (For that to work the window must be at least one workload step long —
// sub-step windows fragment a steady per-step signal into alternating
// win/quiet windows that can never confirm.)
func (h *hysteresis) step(best string, gainPct, minGain float64, confirm, cooldown int) action {
	if h.cooldown > 0 {
		h.cooldown--
		if best != h.current && gainPct >= minGain {
			return actCooldown
		}
		return actNone
	}
	if best == h.current || gainPct < minGain {
		h.candidate, h.streak = "", 0
		return actNone
	}
	if best == h.candidate {
		h.streak++
	} else {
		h.candidate, h.streak = best, 1
	}
	if h.streak >= confirm {
		h.current = best
		h.candidate, h.streak = "", 0
		h.cooldown = cooldown
		return actApply
	}
	return actConfirm
}

// predKey identifies one (allocation, candidate policy) cumulative
// prediction across windows.
type predKey struct {
	alloc  int
	policy string
}

// Controller is the attached online controller of one run.
type Controller struct {
	ctx *cuda.Context
	cfg Config
	inc *whatif.Incremental

	consumed int              // timeline events already ingested
	nextTick machine.Duration // next window close (simulated clock)

	labels   map[string]*hysteresis
	prevObs  machine.Duration
	prevPred map[predKey]machine.Duration

	report Report
	last   *whatif.Result
	err    error
}

// Attach wires a controller onto the context: enables what-if capture,
// hooks the kernel-launch drain boundary, and starts the first window at
// the current simulated time. Attach before the workload allocates, so
// the captured trace starts at the first allocation.
func Attach(ctx *cuda.Context, cfg Config) *Controller {
	cfg = cfg.withDefaults()
	c := &Controller{
		ctx:      ctx,
		cfg:      cfg,
		inc:      whatif.NewIncremental(ctx.Platform(), cfg.Workers),
		nextTick: ctx.Now() + cfg.Window,
		labels:   make(map[string]*hysteresis),
		prevPred: make(map[predKey]machine.Duration),
		report: Report{
			WindowLen:  cfg.Window,
			MinGainPct: cfg.MinGainPct,
			Confirm:    cfg.Confirm,
			Cooldown:   cfg.Cooldown,
			Applied:    make(map[string]string),
		},
	}
	ctx.SetWhatIfCapture(true)
	ctx.SetLaunchHook(c.onLaunch)
	return c
}

// onLaunch is the drain-boundary hook: when the simulated clock passed
// the window tick, close the window here — after the launch's span was
// emitted, before the host proceeds.
func (c *Controller) onLaunch() {
	if c.err != nil {
		return
	}
	now := c.ctx.Now()
	if now < c.nextTick {
		return
	}
	for c.nextTick <= now {
		c.nextTick += c.cfg.Window
	}
	c.closeWindow(true)
}

// Finish closes the final window over the trailing events without
// applying anything (the run is over), detaches the launch hook, and
// returns the first error the controller hit, if any.
func (c *Controller) Finish() error {
	c.ctx.SetLaunchHook(nil)
	if c.err == nil {
		c.closeWindow(false)
	}
	return c.err
}

// Err returns the first error the controller latched (analysis or
// application); the controller stops acting after an error.
func (c *Controller) Err() error { return c.err }

// Report returns the accumulated decision log.
func (c *Controller) Report() *Report { return &c.report }

// Result returns the incremental analysis's last snapshot — the full
// candidate ranking over everything captured so far — or nil before the
// first window closed.
func (c *Controller) Result() *whatif.Result { return c.last }

// closeWindow ingests the events since the last close, snapshots the
// incremental analysis, computes window-local gains, and (when apply is
// set) runs the hysteresis and applies winning placements.
func (c *Controller) closeWindow(apply bool) {
	evs := c.ctx.Timeline().EventsSince(c.consumed)
	if len(evs) == 0 && c.inc.Len() == 0 {
		return
	}
	c.consumed += len(evs)
	c.inc.Ingest(evs)
	res, err := c.inc.Snapshot()
	if err != nil {
		c.err = err
		return
	}
	c.last = res
	w := Window{
		Index:    len(c.report.Windows),
		Start:    c.prevObs,
		End:      res.Observed,
		Events:   len(evs),
		Observed: res.Observed - c.prevObs,
	}
	obsDelta := w.Observed

	// Window-local gains per (label, policy): the cumulative-prediction
	// delta of each candidate over the window, against the observed
	// delta. Allocations sharing a label (re-created temporaries) sum;
	// allocations created inside the window enter with their creation-time
	// baseline (their replay tracked the observed run exactly before it).
	type labelBest struct {
		place um.Placement
		gain  machine.Duration
	}
	gains := make(map[string]map[um.Placement]machine.Duration)
	var order []string
	for _, ar := range res.Allocs {
		for _, cand := range ar.Candidates {
			if cand.Placement == um.PlaceObserved {
				continue
			}
			key := predKey{ar.AllocID, cand.Policy}
			prev, ok := c.prevPred[key]
			if !ok {
				prev = c.prevObs
			}
			c.prevPred[key] = cand.Predicted
			if !cand.Applicable || cand.Placement == um.PlaceExplicit {
				// Explicit copy cannot be applied mid-run (and is
				// predict-only on host-accessed data anyway).
				continue
			}
			g := obsDelta - (cand.Predicted - prev)
			lg, ok := gains[ar.Label]
			if !ok {
				lg = make(map[um.Placement]machine.Duration)
				gains[ar.Label] = lg
				order = append(order, ar.Label)
			}
			lg[cand.Placement] += g
		}
	}
	c.prevObs = res.Observed

	if apply && obsDelta > 0 {
		for _, label := range order {
			lg := gains[label]
			best := labelBest{place: um.PlaceObserved}
			for _, p := range um.Placements() {
				g, ok := lg[p]
				if !ok {
					continue
				}
				if best.place == um.PlaceObserved || g > best.gain {
					best = labelBest{place: p, gain: g}
				}
			}
			if best.place == um.PlaceObserved {
				continue
			}
			gainPct := 100 * float64(best.gain) / float64(obsDelta)
			st := c.labels[label]
			if st == nil {
				st = &hysteresis{}
				c.labels[label] = st
			}
			act := st.step(best.place.String(), gainPct, c.cfg.MinGainPct, c.cfg.Confirm, c.cfg.Cooldown)
			if act == actNone {
				continue
			}
			d := Decision{
				Window:    w.Index,
				Label:     label,
				Policy:    best.place.String(),
				GainPct:   gainPct,
				PredDelta: best.gain,
			}
			switch act {
			case actConfirm:
				d.Action, d.Streak = "confirm", st.streak
			case actCooldown:
				d.Action, d.CooldownLeft = "cooldown", st.cooldown
			case actApply:
				d.Action, d.Streak = "apply", c.cfg.Confirm
				if err := c.ctx.ApplyPlacement(label, best.place); err != nil {
					c.err = fmt.Errorf("adapt: window %d: %w", w.Index, err)
					return
				}
				c.report.Applied[label] = best.place.String()
				c.report.Switches++
			}
			w.Decisions = append(w.Decisions, d)
		}
	}

	c.ctx.Timeline().Emit(timeline.Event{
		Kind:    timeline.KindWindow,
		Name:    "adapt window",
		Track:   timeline.HostTrack,
		Start:   c.ctx.Now(),
		AllocID: -1,
		Detail:  fmt.Sprintf("window %d: %d events, %d decisions", w.Index, w.Events, len(w.Decisions)),
	})
	c.report.Windows = append(c.report.Windows, w)
}

// Text renders the decision log as a table, in the style of the what-if
// report.
func (r *Report) Text(out io.Writer) {
	fmt.Fprintf(out, "adaptive placement: window %s, threshold %.1f%%, confirm %d, cooldown %d\n",
		r.WindowLen, r.MinGainPct, r.Confirm, r.Cooldown)
	for _, w := range r.Windows {
		fmt.Fprintf(out, "  window %d  [%s .. %s]  %d events\n", w.Index, w.Start, w.End, w.Events)
		for _, d := range w.Decisions {
			extra := ""
			switch d.Action {
			case "confirm":
				extra = fmt.Sprintf(" (streak %d)", d.Streak)
			case "cooldown":
				extra = fmt.Sprintf(" (%d windows left)", d.CooldownLeft)
			}
			fmt.Fprintf(out, "    %-8s %-24s -> %-14s gain %6.1f%% (%s)%s\n",
				d.Action, d.Label, d.Policy, d.GainPct, d.PredDelta, extra)
		}
	}
	if len(r.Applied) == 0 {
		fmt.Fprintf(out, "  no placements changed (%d windows)\n", len(r.Windows))
		return
	}
	fmt.Fprintf(out, "  %d placement change(s); final:\n", r.Switches)
	for _, label := range sortedKeys(r.Applied) {
		fmt.Fprintf(out, "    %-24s %s\n", label, r.Applied[label])
	}
}

func sortedKeys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
