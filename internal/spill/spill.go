// Package spill is the bounded-memory trace sink: drained access batches
// serialize to a compact binary log instead of accumulating in live sink
// state, and the analyses that would have consumed them live (heat maps,
// access-pattern classification) replay the log on demand. Retained
// memory is capped by a configurable budget — once the in-memory tail of
// the log exceeds it, the tail flushes to a temporary file — so the
// memory footprint of a trace is O(budget), independent of how many
// accesses it records: a 10^9-access run retains no more than the budget
// plus one encoded frame.
//
// # Log format
//
// The log is the versioned frame encoding of internal/wire: the "XPLT"
// magic + uvarint version header followed by batch, span, and clock
// frames (see the wire package for the per-frame layouts). Logs written
// by a different format version fail to replay with a wire.VersionError
// naming the found and supported versions. The stream segment layer
// (checksums, handshake) is skipped: the log is written and replayed by
// one process, so framing buys nothing.
package spill

import (
	"bufio"
	"bytes"
	"io"
	"os"
	"sync"

	"xplacer/internal/machine"
	"xplacer/internal/record"
	"xplacer/internal/shadow"
	"xplacer/internal/wire"
)

// Sink is a record.Sink that serializes drained batches to the bounded
// log. Apply and Span run under the recording engine's lock (sink
// applications are serialized), Replay and Close after recording is
// done; the sink's own lock keeps misuse safe rather than fast.
type Sink struct {
	mu     sync.Mutex
	budget int
	dir    string
	now    func() machine.Duration

	buf       []byte
	file      *os.File
	fileBytes int64
	err       error

	lastClock  machine.Duration
	clockValid bool

	batches, records int64
}

// New returns a sink retaining at most budget bytes of log in memory;
// the excess spills to a temporary file. A budget below one encoded
// frame still works — every Apply that leaves the buffer over budget
// flushes it, so retention stays at most one frame behind. The format
// header is written into the log tail up front, so it counts against
// the budget like any other bytes.
func New(budget int) *Sink {
	if budget < 0 {
		budget = 0
	}
	return &Sink{budget: budget, buf: wire.AppendHeader(nil)}
}

// SetClock installs the simulated-time source stamped into clock and
// span frames; without one the log carries no time attribution.
func (s *Sink) SetClock(now func() machine.Duration) {
	s.mu.Lock()
	s.now = now
	s.mu.Unlock()
}

// SetDir overrides the directory for the spill file (defaults to the
// system temp directory); tests point it at a per-test dir.
func (s *Sink) SetDir(dir string) {
	s.mu.Lock()
	s.dir = dir
	s.mu.Unlock()
}

// Err returns the first I/O error the sink encountered, if any. Apply
// cannot return one (the record.Sink interface is fire-and-forget), so
// spill failures surface here and at Replay.
func (s *Sink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// RetainedBytes returns the in-memory log tail size — the sink's whole
// retained state, what the budget bounds.
func (s *Sink) RetainedBytes() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.buf)
}

// SpilledBytes returns the log bytes written to the spill file.
func (s *Sink) SpilledBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fileBytes
}

// Counts returns the applied batch and record totals.
func (s *Sink) Counts() (batches, records int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.batches, s.records
}

// stampClock appends a clock frame if the simulated clock moved; the
// caller holds s.mu.
func (s *Sink) stampClock() {
	if s.now == nil {
		return
	}
	at := s.now()
	if s.clockValid && at == s.lastClock {
		return
	}
	s.lastClock, s.clockValid = at, true
	s.buf = wire.AppendClock(s.buf, at)
}

// Span appends a span-boundary frame. Front ends call it at the same
// flush points where they begin a live pattern span (kernel launches),
// so replayed streams split identically.
func (s *Sink) Span(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var at machine.Duration
	if s.now != nil {
		at = s.now()
		s.lastClock, s.clockValid = at, true
	}
	s.buf = wire.AppendSpan(s.buf, name, at)
	s.spillIfOver()
}

// Apply implements record.Sink: the batch is encoded onto the log tail,
// and the tail flushes to the spill file whenever it exceeds the budget.
func (s *Sink) Apply(batch []shadow.Access, _ *record.Cursor) {
	if len(batch) == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stampClock()
	s.batches++
	s.records += int64(len(batch))
	for len(batch) > 0 {
		n := len(batch)
		if n > wire.MaxFrameRecords {
			n = wire.MaxFrameRecords
		}
		s.buf = wire.AppendBatch(s.buf, batch[:n])
		batch = batch[n:]
		s.spillIfOver()
	}
}

// spillIfOver flushes the in-memory tail to the spill file when it
// exceeds the budget; the caller holds s.mu. The file is created lazily —
// runs that fit the budget never touch the filesystem.
func (s *Sink) spillIfOver() {
	if len(s.buf) <= s.budget || s.err != nil {
		return
	}
	if s.file == nil {
		f, err := os.CreateTemp(s.dir, "xplacer-spill-*.log")
		if err != nil {
			s.err = err
			return
		}
		s.file = f
	}
	n, err := s.file.Write(s.buf)
	s.fileBytes += int64(n)
	if err != nil {
		s.err = err
		return
	}
	s.buf = s.buf[:0]
}

// Replay decodes the whole log in order — spilled prefix, then the
// in-memory tail — invoking onBatch for each batch frame (the slice is
// reused between calls), onSpan for span frames, and onClock for clock
// frames. Nil callbacks skip their frames. Replay does not consume the
// log; it can run multiple times.
func (s *Sink) Replay(onBatch func([]shadow.Access), onSpan func(name string, at machine.Duration), onClock func(at machine.Duration)) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	var parts []io.Reader
	if s.file != nil {
		parts = append(parts, io.NewSectionReader(s.file, 0, s.fileBytes))
	}
	parts = append(parts, bytes.NewReader(s.buf))
	r := bufio.NewReaderSize(io.MultiReader(parts...), 1<<16)
	if err := wire.ReadHeader(r); err != nil {
		return err
	}
	return wire.NewFrameDecoder(r, wire.Handler{
		Batch: onBatch,
		Span:  onSpan,
		Clock: onClock,
	}).Run()
}

// Close removes the spill file, if one was created. The sink is not
// usable afterwards.
func (s *Sink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.file == nil {
		return nil
	}
	name := s.file.Name()
	err := s.file.Close()
	if rmErr := os.Remove(name); err == nil {
		err = rmErr
	}
	s.file = nil
	return err
}
