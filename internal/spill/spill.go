// Package spill is the bounded-memory trace sink: drained access batches
// serialize to a compact binary log instead of accumulating in live sink
// state, and the analyses that would have consumed them live (heat maps,
// access-pattern classification) replay the log on demand. Retained
// memory is capped by a configurable budget — once the in-memory tail of
// the log exceeds it, the tail flushes to a temporary file — so the
// memory footprint of a trace is O(budget), independent of how many
// accesses it records: a 10^9-access run retains no more than the budget
// plus one encoded frame.
//
// # Log format
//
// The log is a sequence of frames, each starting with a one-byte tag:
//
//	0x01 batch: uvarint record count, then per record
//	     dev byte, kind byte, uvarint size, svarint address delta
//	     (against the previous record's address, starting from 0 each
//	     frame), uvarint count, and — only when count > 1 — uvarint
//	     stride. The RLE range record (shadow.Access) is the on-disk
//	     unit; scalar accesses encode count 0.
//	0x02 span: uvarint name length, the name bytes, uvarint simulated
//	     time. Written at kernel-launch boundaries so replayed pattern
//	     streams attribute accesses to the same spans the live sink
//	     would have.
//	0x03 clock: uvarint simulated time. Written whenever the simulated
//	     clock moved since the last frame, so clock-driven consumers
//	     (heat-map epoch rotation) replay with the same attribution.
//
// Address deltas and the varint encoding make the common drained shapes
// small: a coalesced sweep is a handful of bytes, a scalar-heavy batch
// costs a few bytes per access.
package spill

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sync"

	"xplacer/internal/machine"
	"xplacer/internal/memsim"
	"xplacer/internal/record"
	"xplacer/internal/shadow"
)

// Frame tags.
const (
	frameBatch = 0x01
	frameSpan  = 0x02
	frameClock = 0x03
)

// maxFrameRecords bounds one batch frame so the replay-side decode buffer
// stays small regardless of drained batch sizes.
const maxFrameRecords = 4096

// Sink is a record.Sink that serializes drained batches to the bounded
// log. Apply and Span run under the recording engine's lock (sink
// applications are serialized), Replay and Close after recording is
// done; the sink's own lock keeps misuse safe rather than fast.
type Sink struct {
	mu     sync.Mutex
	budget int
	dir    string
	now    func() machine.Duration

	buf       []byte
	file      *os.File
	fileBytes int64
	err       error

	lastClock  machine.Duration
	clockValid bool

	batches, records int64
}

// New returns a sink retaining at most budget bytes of log in memory;
// the excess spills to a temporary file. A budget below one encoded
// frame still works — every Apply that leaves the buffer over budget
// flushes it, so retention stays at most one frame behind.
func New(budget int) *Sink {
	if budget < 0 {
		budget = 0
	}
	return &Sink{budget: budget}
}

// SetClock installs the simulated-time source stamped into clock and
// span frames; without one the log carries no time attribution.
func (s *Sink) SetClock(now func() machine.Duration) {
	s.mu.Lock()
	s.now = now
	s.mu.Unlock()
}

// SetDir overrides the directory for the spill file (defaults to the
// system temp directory); tests point it at a per-test dir.
func (s *Sink) SetDir(dir string) {
	s.mu.Lock()
	s.dir = dir
	s.mu.Unlock()
}

// Err returns the first I/O error the sink encountered, if any. Apply
// cannot return one (the record.Sink interface is fire-and-forget), so
// spill failures surface here and at Replay.
func (s *Sink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// RetainedBytes returns the in-memory log tail size — the sink's whole
// retained state, what the budget bounds.
func (s *Sink) RetainedBytes() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.buf)
}

// SpilledBytes returns the log bytes written to the spill file.
func (s *Sink) SpilledBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fileBytes
}

// Counts returns the applied batch and record totals.
func (s *Sink) Counts() (batches, records int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.batches, s.records
}

// stampClock appends a clock frame if the simulated clock moved; the
// caller holds s.mu.
func (s *Sink) stampClock() {
	if s.now == nil {
		return
	}
	at := s.now()
	if s.clockValid && at == s.lastClock {
		return
	}
	s.lastClock, s.clockValid = at, true
	s.buf = append(s.buf, frameClock)
	s.buf = binary.AppendUvarint(s.buf, uint64(at))
}

// Span appends a span-boundary frame. Front ends call it at the same
// flush points where they begin a live pattern span (kernel launches),
// so replayed streams split identically.
func (s *Sink) Span(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var at machine.Duration
	if s.now != nil {
		at = s.now()
		s.lastClock, s.clockValid = at, true
	}
	s.buf = append(s.buf, frameSpan)
	s.buf = binary.AppendUvarint(s.buf, uint64(len(name)))
	s.buf = append(s.buf, name...)
	s.buf = binary.AppendUvarint(s.buf, uint64(at))
	s.spillIfOver()
}

// Apply implements record.Sink: the batch is encoded onto the log tail,
// and the tail flushes to the spill file whenever it exceeds the budget.
func (s *Sink) Apply(batch []shadow.Access, _ *record.Cursor) {
	if len(batch) == 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stampClock()
	s.batches++
	s.records += int64(len(batch))
	for len(batch) > 0 {
		n := len(batch)
		if n > maxFrameRecords {
			n = maxFrameRecords
		}
		s.buf = append(s.buf, frameBatch)
		s.buf = binary.AppendUvarint(s.buf, uint64(n))
		prev := memsim.Addr(0)
		for i := 0; i < n; i++ {
			a := &batch[i]
			s.buf = append(s.buf, byte(a.Dev), byte(a.Kind))
			s.buf = binary.AppendUvarint(s.buf, uint64(a.Size))
			s.buf = binary.AppendVarint(s.buf, int64(a.Addr)-int64(prev))
			prev = a.Addr
			s.buf = binary.AppendUvarint(s.buf, uint64(a.Count))
			if a.Count > 1 {
				s.buf = binary.AppendUvarint(s.buf, uint64(a.Stride))
			}
		}
		batch = batch[n:]
		s.spillIfOver()
	}
}

// spillIfOver flushes the in-memory tail to the spill file when it
// exceeds the budget; the caller holds s.mu. The file is created lazily —
// runs that fit the budget never touch the filesystem.
func (s *Sink) spillIfOver() {
	if len(s.buf) <= s.budget || s.err != nil {
		return
	}
	if s.file == nil {
		f, err := os.CreateTemp(s.dir, "xplacer-spill-*.log")
		if err != nil {
			s.err = err
			return
		}
		s.file = f
	}
	n, err := s.file.Write(s.buf)
	s.fileBytes += int64(n)
	if err != nil {
		s.err = err
		return
	}
	s.buf = s.buf[:0]
}

// Replay decodes the whole log in order — spilled prefix, then the
// in-memory tail — invoking onBatch for each batch frame (the slice is
// reused between calls), onSpan for span frames, and onClock for clock
// frames. Nil callbacks skip their frames. Replay does not consume the
// log; it can run multiple times.
func (s *Sink) Replay(onBatch func([]shadow.Access), onSpan func(name string, at machine.Duration), onClock func(at machine.Duration)) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	var parts []io.Reader
	if s.file != nil {
		parts = append(parts, io.NewSectionReader(s.file, 0, s.fileBytes))
	}
	parts = append(parts, bytes.NewReader(s.buf))
	r := bufio.NewReaderSize(io.MultiReader(parts...), 1<<16)
	batch := make([]shadow.Access, 0, maxFrameRecords)
	for {
		tag, err := r.ReadByte()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		switch tag {
		case frameBatch:
			n, err := binary.ReadUvarint(r)
			if err != nil {
				return err
			}
			if n > maxFrameRecords {
				return fmt.Errorf("spill: corrupt batch frame (%d records)", n)
			}
			batch = batch[:0]
			prev := memsim.Addr(0)
			for i := uint64(0); i < n; i++ {
				var a shadow.Access
				dev, err := r.ReadByte()
				if err != nil {
					return err
				}
				kind, err := r.ReadByte()
				if err != nil {
					return err
				}
				size, err := binary.ReadUvarint(r)
				if err != nil {
					return err
				}
				delta, err := binary.ReadVarint(r)
				if err != nil {
					return err
				}
				count, err := binary.ReadUvarint(r)
				if err != nil {
					return err
				}
				a.Dev, a.Kind, a.Size = machine.Device(dev), memsim.AccessKind(kind), int32(size)
				a.Addr = memsim.Addr(int64(prev) + delta)
				prev = a.Addr
				a.Count = int32(count)
				if a.Count > 1 {
					stride, err := binary.ReadUvarint(r)
					if err != nil {
						return err
					}
					a.Stride = int32(stride)
				}
				batch = append(batch, a)
			}
			if onBatch != nil {
				onBatch(batch)
			}
		case frameSpan:
			n, err := binary.ReadUvarint(r)
			if err != nil {
				return err
			}
			name := make([]byte, n)
			if _, err := io.ReadFull(r, name); err != nil {
				return err
			}
			at, err := binary.ReadUvarint(r)
			if err != nil {
				return err
			}
			if onSpan != nil {
				onSpan(string(name), machine.Duration(at))
			}
		case frameClock:
			at, err := binary.ReadUvarint(r)
			if err != nil {
				return err
			}
			if onClock != nil {
				onClock(machine.Duration(at))
			}
		default:
			return fmt.Errorf("spill: corrupt log (frame tag %#x)", tag)
		}
	}
}

// Close removes the spill file, if one was created. The sink is not
// usable afterwards.
func (s *Sink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.file == nil {
		return nil
	}
	name := s.file.Name()
	err := s.file.Close()
	if rmErr := os.Remove(name); err == nil {
		err = rmErr
	}
	s.file = nil
	return err
}
