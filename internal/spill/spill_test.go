package spill

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"xplacer/internal/machine"
	"xplacer/internal/memsim"
	"xplacer/internal/shadow"
	"xplacer/internal/wire"
)

// randomBatches builds a deterministic mix of scalar and RLE records.
func randomBatches(rng *rand.Rand, nBatches int) [][]shadow.Access {
	devs := []machine.Device{machine.CPU, machine.GPU}
	kinds := []memsim.AccessKind{memsim.Read, memsim.Write, memsim.ReadWrite}
	out := make([][]shadow.Access, nBatches)
	addr := memsim.Addr(0x100000)
	for b := range out {
		n := 1 + rng.Intn(300)
		batch := make([]shadow.Access, n)
		for i := range batch {
			a := &batch[i]
			a.Dev = devs[rng.Intn(2)]
			a.Kind = kinds[rng.Intn(3)]
			a.Size = int32(4 << rng.Intn(2))
			switch rng.Intn(3) {
			case 0:
				addr += memsim.Addr(rng.Intn(64) * 4)
			case 1:
				addr -= memsim.Addr(rng.Intn(32) * 4)
			}
			a.Addr = addr
			if rng.Intn(3) == 0 {
				a.Count = int32(2 + rng.Intn(2000))
				a.Stride = int32(4 * (1 + rng.Intn(4)))
			}
		}
		out[b] = batch
	}
	return out
}

// TestRoundTrip checks the log decodes back to exactly the applied
// batches, spans, and clock stamps — in order, across the spill-file
// boundary (tiny budget forces nearly everything through the file).
func TestRoundTrip(t *testing.T) {
	for _, budget := range []int{0, 64, 1 << 20} {
		s := New(budget)
		s.SetDir(t.TempDir())
		clock := machine.Duration(0)
		s.SetClock(func() machine.Duration { return clock })

		rng := rand.New(rand.NewSource(3))
		batches := randomBatches(rng, 40)
		type event struct {
			batch []shadow.Access
			span  string
			at    machine.Duration
		}
		var want []event
		for i, b := range batches {
			if i%7 == 0 {
				clock += 100
				name := "kernel"
				s.Span(name)
				want = append(want, event{span: name, at: clock})
			}
			s.Apply(b, nil)
			want = append(want, event{batch: b, at: clock})
		}
		if err := s.Err(); err != nil {
			t.Fatal(err)
		}
		if budget < 1<<20 && s.SpilledBytes() == 0 {
			t.Fatalf("budget %d: nothing spilled", budget)
		}

		var got []event
		at := machine.Duration(0)
		err := s.Replay(
			func(b []shadow.Access) {
				got = append(got, event{batch: append([]shadow.Access(nil), b...), at: at})
			},
			func(name string, spanAt machine.Duration) {
				at = spanAt
				got = append(got, event{span: name, at: spanAt})
			},
			func(clockAt machine.Duration) { at = clockAt },
		)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("budget %d: replayed %d events, want %d", budget, len(got), len(want))
		}
		for i := range want {
			w, g := want[i], got[i]
			if w.span != g.span || w.at != g.at || len(w.batch) != len(g.batch) {
				t.Fatalf("budget %d event %d: got {span %q at %d, %d records}, want {span %q at %d, %d records}",
					budget, i, g.span, g.at, len(g.batch), w.span, w.at, len(w.batch))
			}
			for j := range w.batch {
				if w.batch[j] != g.batch[j] {
					t.Fatalf("budget %d event %d record %d: got %+v, want %+v", budget, i, j, g.batch[j], w.batch[j])
				}
			}
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestVersionMismatch checks a log stamped with a future format version
// fails to replay with an error naming found vs supported versions.
func TestVersionMismatch(t *testing.T) {
	s := New(1 << 20)
	// Rewrite the header with a version this build does not decode.
	s.buf = append([]byte(wire.Magic), 0x63) // version 99
	err := s.Replay(nil, nil, nil)
	var ve *wire.VersionError
	if !errors.As(err, &ve) {
		t.Fatalf("Replay = %v, want wire.VersionError", err)
	}
	if ve.Found != 99 || ve.Supported != wire.Version {
		t.Fatalf("VersionError = %+v", ve)
	}
	if !strings.Contains(err.Error(), "99") || !strings.Contains(err.Error(), "supported") {
		t.Fatalf("error %q does not name found vs supported versions", err)
	}
}

// TestBudgetInvariant drives a large stream through a small budget and
// asserts the retained tail never exceeds budget after any Apply — the
// bounded-memory guarantee.
func TestBudgetInvariant(t *testing.T) {
	const budget = 4096
	s := New(budget)
	s.SetDir(t.TempDir())
	rng := rand.New(rand.NewSource(11))
	for _, b := range randomBatches(rng, 500) {
		s.Apply(b, nil)
		if r := s.RetainedBytes(); r > budget {
			t.Fatalf("retained %d bytes > budget %d", r, budget)
		}
	}
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	batches, records := s.Counts()
	if batches != 500 || records <= 0 {
		t.Fatalf("counts = %d batches, %d records", batches, records)
	}
	// Replay twice: the log is not consumed.
	for round := 0; round < 2; round++ {
		var n int64
		if err := s.Replay(func(b []shadow.Access) { n += int64(len(b)) }, nil, nil); err != nil {
			t.Fatal(err)
		}
		if n != records {
			t.Fatalf("round %d: replayed %d records, want %d", round, n, records)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestLargeBatchSplits checks batches above wire.MaxFrameRecords split
// across frames and replay intact.
func TestLargeBatchSplits(t *testing.T) {
	s := New(1 << 20)
	s.SetDir(t.TempDir())
	batch := make([]shadow.Access, wire.MaxFrameRecords+100)
	for i := range batch {
		batch[i] = shadow.Access{Dev: machine.GPU, Kind: memsim.Read, Size: 4, Addr: memsim.Addr(0x1000 + i*4)}
	}
	s.Apply(batch, nil)
	var got []shadow.Access
	if err := s.Replay(func(b []shadow.Access) { got = append(got, b...) }, nil, nil); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(batch) {
		t.Fatalf("replayed %d records, want %d", len(got), len(batch))
	}
	for i := range batch {
		if got[i] != batch[i] {
			t.Fatalf("record %d: got %+v, want %+v", i, got[i], batch[i])
		}
	}
}
