// Package advisor turns XPlacer diagnoses into concrete data-placement
// actions — the cudaMemAdvise calls of the paper's "Possible remedies"
// (§III-A) and the strategies evaluated in §IV-A. Where the paper leaves
// choosing a remedy to "skilled programmers", the advisor encodes the
// paper's own decision rules:
//
//   - memory written by one processor and (re-)read by the other, with few
//     writes, wants cudaMemAdviseSetReadMostly (the LULESH domain-object
//     fix that yielded 2.75-3.1x);
//   - memory with alternating accesses dominated by one writer wants
//     SetPreferredLocation on the writer plus SetAccessedBy for the
//     reader, avoiding the page ping-pong without duplication;
//   - on hardware-coherent (NVLink/Power9) machines ReadMostly is NOT
//     recommended — the paper measured it at 0.8x there.
//
// Recommendations can be applied to a live context (Apply) or re-applied
// to a fresh run by allocation label (ApplyByLabel), enabling the
// measure -> advise -> re-run workflow of §III-D.
package advisor

import (
	"fmt"
	"io"
	"strings"

	"xplacer/internal/adapt"
	"xplacer/internal/cuda"
	"xplacer/internal/diag"
	"xplacer/internal/machine"
	"xplacer/internal/memsim"
	"xplacer/internal/um"
	"xplacer/internal/whatif"
)

// Action is one advised cudaMemAdvise call.
type Action struct {
	Advice um.Advice
	Device machine.Device
}

// Recommendation is the advised placement for one allocation.
type Recommendation struct {
	// Alloc is the allocation label; AllocID links to the allocation.
	Alloc   string
	AllocID int
	// Actions are the advise calls to issue, in order.
	Actions []Action
	// Rationale explains the decision in the paper's terms.
	Rationale string
	// WhatIf is the replay engine's prediction for the allocation, filled
	// in by Annotate when a what-if analysis of the run is available.
	WhatIf *WhatIfNote
	// Adaptive records what the online controller actually applied to the
	// allocation mid-run, filled in by AnnotateAdaptive when the run was
	// steered (cmd/xplacer -adapt).
	Adaptive *AdaptiveNote
}

// WhatIfNote quantifies a recommendation with the what-if replay engine's
// prediction: the winning policy for the allocation and its predicted
// whole-run time against the observed baseline.
type WhatIfNote struct {
	// Policy is the winning placement's name (um.Placement.String).
	Policy string
	// Observed is the replayed baseline total; Predicted is the winner's
	// total; Delta is Predicted − Observed (negative predicts a speedup).
	Observed  machine.Duration
	Predicted machine.Duration
	Delta     machine.Duration
}

// AdaptiveNote records what the online controller did to an allocation's
// label during a steered run — the closed-loop counterpart of the
// offline WhatIfNote.
type AdaptiveNote struct {
	// Policy is the placement the controller left applied at run end.
	Policy string
	// Switches counts the mid-run placement changes on the label.
	Switches int
}

func (r Recommendation) String() string {
	s := r.Alloc + ":"
	for _, a := range r.Actions {
		s += fmt.Sprintf(" %s(%s)", a.Advice, a.Device)
	}
	s += " — " + r.Rationale
	if n := r.WhatIf; n != nil {
		s += fmt.Sprintf(" (what-if: %s predicts %s vs %s observed, Δ %s)",
			n.Policy, n.Predicted, n.Observed, n.Delta)
	}
	if n := r.Adaptive; n != nil {
		s += fmt.Sprintf(" (adaptive: controller applied %s mid-run, %d switch(es))",
			n.Policy, n.Switches)
	}
	return s
}

// Annotate attaches the what-if engine's per-allocation predictions to
// the matching recommendations (by allocation ID). Recommendations for
// allocations the analysis did not cover are left unannotated.
func Annotate(recs []Recommendation, res *whatif.Result) {
	if res == nil {
		return
	}
	byID := make(map[int]*whatif.AllocReport, len(res.Allocs))
	for i := range res.Allocs {
		byID[res.Allocs[i].AllocID] = &res.Allocs[i]
	}
	for i := range recs {
		ar, ok := byID[recs[i].AllocID]
		if !ok {
			continue
		}
		recs[i].WhatIf = &WhatIfNote{
			Policy:    ar.WinnerPolicy,
			Observed:  res.Observed,
			Predicted: ar.WinnerPredicted,
			Delta:     ar.WinnerPredicted - res.Observed,
		}
	}
}

// AnnotateAdaptive attaches the adaptive controller's decisions to the
// matching recommendations (by allocation label): what the closed loop
// actually applied during the run, next to what the offline rules and
// the what-if replay suggest. Labels the controller never changed are
// left unannotated.
func AnnotateAdaptive(recs []Recommendation, rep *adapt.Report) {
	if rep == nil {
		return
	}
	switches := make(map[string]int)
	for _, w := range rep.Windows {
		for _, d := range w.Decisions {
			if d.Action == "apply" {
				switches[d.Label]++
			}
		}
	}
	for i := range recs {
		policy, ok := rep.Applied[recs[i].Alloc]
		if !ok {
			continue
		}
		recs[i].Adaptive = &AdaptiveNote{Policy: policy, Switches: switches[recs[i].Alloc]}
	}
}

// Options tunes the decision rules.
type Options struct {
	// WriteShareThresholdPct is the per-device write share (of touched
	// words) below which an allocation still counts as "mostly read";
	// the paper's SetReadMostly guidance is "mostly ... read from and only
	// occasionally written". Default 10.
	WriteShareThresholdPct int
	// HardwareCoherent disables ReadMostly recommendations (the paper
	// measured ReadMostly at 0.8x on the NVLink machine).
	HardwareCoherent bool
}

// DefaultOptions returns the standard thresholds for a platform.
func DefaultOptions(p *machine.Platform) Options {
	return Options{WriteShareThresholdPct: 10, HardwareCoherent: p.HardwareCoherent}
}

// Recommend derives placement recommendations from a diagnostic report.
// Only managed allocations with alternating accesses get recommendations;
// everything else either needs no help or needs a code change (see the
// findings' remedies).
func Recommend(rep diag.Report, opt Options) []Recommendation {
	if opt.WriteShareThresholdPct == 0 {
		opt.WriteShareThresholdPct = 10
	}
	var out []Recommendation
	for _, s := range rep.Allocs {
		if s.Kind != memsim.Managed || s.Alternating == 0 || s.Freed {
			continue
		}
		r := recommendOne(s, opt)
		if r != nil {
			r.Rationale += citePattern(rep.Patterns.Alloc(s.AllocID))
			out = append(out, *r)
		}
	}
	return out
}

// citePattern renders an allocation's access-pattern digest (when the run
// was observed with -patterns) as a rationale suffix. Uncoalesced classes
// get an explicit caveat: placement advice moves the pages, but a scatter
// or random walk still wastes most of each memory transaction, so the
// win is bounded until the access order itself changes.
func citePattern(pa *diag.PatternAlloc) string {
	if pa == nil || pa.Class == "" || pa.Class == "unknown" {
		return ""
	}
	where := ""
	if pa.Span != "" && pa.Span != "(start)" {
		where = " in " + pa.Span
	}
	s := fmt.Sprintf(" [%s pattern: %s%s", pa.Dev, pa.Class, where)
	switch pa.Class {
	case "scatter", "random":
		s += "; coalescing-limited — placement alone will not recover the transaction waste"
	case "strided":
		if pa.StrideBytes != 0 {
			s += fmt.Sprintf(", stride %dB", pa.StrideBytes)
		}
	}
	return s + "]"
}

// recommendOne applies the decision rules to one summary.
func recommendOne(s diag.AllocSummary, opt Options) *Recommendation {
	if s.TouchedWords == 0 {
		return nil
	}
	writeShare := func(writes int) int {
		return writes * 100 / s.TouchedWords
	}
	cpuW, gpuW := writeShare(s.WriteC), writeShare(s.WriteG)

	// Mostly read on both sides, occasionally written: ReadMostly (unless
	// the platform makes that a pessimization).
	if cpuW <= opt.WriteShareThresholdPct && gpuW <= opt.WriteShareThresholdPct {
		if opt.HardwareCoherent {
			return &Recommendation{
				Alloc:   s.Label,
				AllocID: s.AllocID,
				Actions: []Action{
					{Advice: um.AdviseSetAccessedBy, Device: machine.GPU},
					{Advice: um.AdviseSetAccessedBy, Device: machine.CPU},
				},
				Rationale: "alternating accesses with few writes; on a hardware-coherent link ReadMostly costs more than it saves (paper: 0.8x), so keep both mappings instead" + citeKernels(s.Kernels),
			}
		}
		return &Recommendation{
			Alloc:     s.Label,
			AllocID:   s.AllocID,
			Actions:   []Action{{Advice: um.AdviseSetReadMostly, Device: machine.CPU}},
			Rationale: fmt.Sprintf("accessed by both processors, mostly read (CPU writes %d%%, GPU writes %d%% of touched words): read-duplicate instead of ping-ponging%s", cpuW, gpuW, citeKernels(s.Kernels)),
		}
	}

	// One side dominates the writes: pin the page there and map the other
	// side so it reads remotely instead of migrating.
	writer, reader := machine.CPU, machine.GPU
	if gpuW > cpuW {
		writer, reader = machine.GPU, machine.CPU
	}
	return &Recommendation{
		Alloc:   s.Label,
		AllocID: s.AllocID,
		Actions: []Action{
			{Advice: um.AdviseSetPreferredLocation, Device: writer},
			{Advice: um.AdviseSetAccessedBy, Device: reader},
		},
		Rationale: fmt.Sprintf("alternating accesses dominated by %s writes: pin there, map the %s to avoid fault-driven migration%s", writer, reader, citeKernels(s.Kernels)),
	}
}

// citeKernels renders a summary's kernel-span attribution (filled in by
// diag.Attribute) as a rationale suffix, so recommendations point at the
// launches whose access pattern motivated them.
func citeKernels(kernels []string) string {
	if len(kernels) == 0 {
		return ""
	}
	const maxShown = 3
	shown := kernels
	extra := 0
	if len(shown) > maxShown {
		extra = len(shown) - maxShown
		shown = shown[:maxShown]
	}
	s := " [seen in " + strings.Join(shown, ", ")
	if extra > 0 {
		s += fmt.Sprintf(", +%d more", extra)
	}
	return s + "]"
}

// Apply issues the advised calls on a live context by allocation label.
// It returns the number of allocations advised.
func Apply(ctx *cuda.Context, recs []Recommendation) (int, error) {
	return applyByLabel(ctx, recs)
}

// ApplyByLabel issues the advised calls on a (possibly fresh) context,
// matching allocations by label: the measure -> advise -> re-run loop.
func ApplyByLabel(ctx *cuda.Context, recs []Recommendation) (int, error) {
	return applyByLabel(ctx, recs)
}

func applyByLabel(ctx *cuda.Context, recs []Recommendation) (int, error) {
	byLabel := map[string]*memsim.Alloc{}
	for _, a := range ctx.Space().Live() {
		byLabel[a.Label] = a
	}
	n := 0
	for _, r := range recs {
		a, ok := byLabel[r.Alloc]
		if !ok {
			continue
		}
		for _, act := range r.Actions {
			if err := ctx.Advise(a, act.Advice, act.Device); err != nil {
				return n, fmt.Errorf("advisor: %s: %w", r.Alloc, err)
			}
		}
		n++
	}
	return n, nil
}

// Render writes the recommendations as a human-readable plan.
func Render(w io.Writer, recs []Recommendation) {
	if len(recs) == 0 {
		fmt.Fprintln(w, "no placement recommendations (no alternating managed allocations)")
		return
	}
	fmt.Fprintf(w, "%d placement recommendation(s):\n", len(recs))
	for _, r := range recs {
		fmt.Fprintf(w, "  %s\n", r)
	}
}
