package advisor

import (
	"strings"
	"testing"

	"xplacer/internal/core"
	"xplacer/internal/cuda"
	"xplacer/internal/diag"
	"xplacer/internal/machine"
	"xplacer/internal/memsim"
	"xplacer/internal/um"
	"xplacer/internal/whatif"
)

// sharedWorkload is a small app with the LULESH sharing structure: a
// pointer table of 30 slots written at setup and rarely updated by the
// CPU, read whole by every kernel, plus a GPU-exclusive data array.
func sharedWorkload(s *core.Session, timesteps int, resetAfterFirst bool) error {
	ctx := s.Ctx
	table, err := ctx.MallocManaged(512, "table")
	if err != nil {
		return err
	}
	data, err := ctx.MallocManaged(1<<14, "data")
	if err != nil {
		return err
	}
	tv := memsim.Uint64s(table)
	dv := memsim.Float64s(data)
	host := ctx.Host()
	for slot := int64(0); slot < 30; slot++ {
		tv.Store(host, slot, uint64(data.Base)+uint64(slot))
	}
	for step := 0; step < timesteps; step++ {
		// The CPU occasionally updates one table slot...
		tv.Store(host, 1, uint64(step))
		// ...and the GPU reads the whole table and crunches the data.
		ctx.LaunchSync("crunch", func(e *cuda.Exec) {
			for slot := int64(0); slot < 30; slot++ {
				_ = tv.Load(e, slot)
			}
			for i := int64(0); i < dv.Len(); i++ {
				dv.Store(e, i, float64(i)+float64(step))
			}
		})
		if resetAfterFirst && step == 0 && s.Tracer != nil {
			// Discard the initialization interval so the analysis sees the
			// steady state, like the paper's per-timestep diagnostics.
			s.Tracer.Table().Reset()
		}
	}
	return nil
}

func analyze(t *testing.T, plat *machine.Platform) (diag.Report, *core.Session) {
	t.Helper()
	s := core.MustSession(plat)
	if err := sharedWorkload(s, 6, true); err != nil {
		t.Fatal(err)
	}
	return s.Diagnostic(nil, "steady state"), s
}

func TestRecommendReadMostlyOnPCIe(t *testing.T) {
	plat := machine.IntelPascal()
	rep, _ := analyze(t, plat)
	recs := Recommend(rep, DefaultOptions(plat))
	if len(recs) != 1 {
		t.Fatalf("recommendations = %v, want exactly one (the table)", recs)
	}
	r := recs[0]
	if r.Alloc != "table" {
		t.Errorf("advised %q, want table", r.Alloc)
	}
	if len(r.Actions) != 1 || r.Actions[0].Advice != um.AdviseSetReadMostly {
		t.Errorf("actions = %v, want SetReadMostly", r.Actions)
	}
}

func TestRecommendAvoidsReadMostlyOnCoherentLink(t *testing.T) {
	plat := machine.IBMVolta()
	rep, _ := analyze(t, plat)
	recs := Recommend(rep, DefaultOptions(plat))
	if len(recs) != 1 {
		t.Fatalf("recommendations = %v", recs)
	}
	for _, a := range recs[0].Actions {
		if a.Advice == um.AdviseSetReadMostly {
			t.Errorf("ReadMostly recommended on the NVLink machine (paper: 0.8x there)")
		}
	}
}

func TestRecommendPreferredLocationForWriterDominated(t *testing.T) {
	// An allocation the GPU writes every step and the CPU reads.
	plat := machine.IntelPascal()
	s := core.MustSession(plat)
	ctx := s.Ctx
	red, err := ctx.MallocManaged(64, "reduction")
	if err != nil {
		t.Fatal(err)
	}
	rv := memsim.Float64s(red)
	host := ctx.Host()
	for step := 0; step < 4; step++ {
		ctx.LaunchSync("reduce", func(e *cuda.Exec) {
			rv.Store(e, 0, float64(step))
		})
		_ = rv.Load(host, 0)
	}
	rep := s.Diagnostic(nil, "end")
	recs := Recommend(rep, DefaultOptions(plat))
	if len(recs) != 1 {
		t.Fatalf("recs = %v", recs)
	}
	acts := recs[0].Actions
	if len(acts) != 2 || acts[0].Advice != um.AdviseSetPreferredLocation || acts[0].Device != machine.GPU {
		t.Errorf("actions = %v, want PreferredLocation(GPU)+AccessedBy(CPU)", acts)
	}
	if acts[1].Advice != um.AdviseSetAccessedBy || acts[1].Device != machine.CPU {
		t.Errorf("second action = %v", acts[1])
	}
}

func TestExclusiveAllocationsGetNoRecommendation(t *testing.T) {
	plat := machine.IntelPascal()
	rep, _ := analyze(t, plat)
	recs := Recommend(rep, DefaultOptions(plat))
	for _, r := range recs {
		if r.Alloc == "data" {
			t.Error("GPU-exclusive allocation advised")
		}
	}
}

func TestMeasureAdviseRerunLoop(t *testing.T) {
	// The §III-D workflow: run instrumented, derive advice, re-run with
	// the advice applied — the advised run must be faster.
	plat := machine.IntelPascal()
	rep, s1 := analyze(t, plat)
	baseline := s1.SimTime()
	recs := Recommend(rep, DefaultOptions(plat))
	if len(recs) == 0 {
		t.Fatal("no recommendations")
	}

	// Fresh uninstrumented run: allocate, apply the advice by label, then
	// execute the same steps.
	s2, err := core.NewPlainSession(plat)
	if err != nil {
		t.Fatal(err)
	}
	ctx := s2.Ctx
	table, _ := ctx.MallocManaged(512, "table")
	data, _ := ctx.MallocManaged(1<<14, "data")
	if n, err := ApplyByLabel(ctx, recs); err != nil || n != 1 {
		t.Fatalf("apply: n=%d err=%v", n, err)
	}
	tv := memsim.Uint64s(table)
	dv := memsim.Float64s(data)
	host := ctx.Host()
	for slot := int64(0); slot < 30; slot++ {
		tv.Store(host, slot, uint64(data.Base)+uint64(slot))
	}
	for step := 0; step < 6; step++ {
		tv.Store(host, 1, uint64(step))
		ctx.LaunchSync("crunch", func(e *cuda.Exec) {
			for slot := int64(0); slot < 30; slot++ {
				_ = tv.Load(e, slot)
			}
			for i := int64(0); i < dv.Len(); i++ {
				dv.Store(e, i, float64(i)+float64(step))
			}
		})
	}
	advised := s2.SimTime()
	if float64(baseline)/float64(advised) < 1.3 {
		t.Errorf("advice did not help: baseline %v, advised %v", baseline, advised)
	}
}

func TestApplyByLabelSkipsUnknown(t *testing.T) {
	s := core.MustSession(machine.IntelPascal())
	recs := []Recommendation{{Alloc: "ghost", Actions: []Action{{Advice: um.AdviseSetReadMostly}}}}
	n, err := ApplyByLabel(s.Ctx, recs)
	if err != nil || n != 0 {
		t.Errorf("n=%d err=%v", n, err)
	}
}

func TestApplyErrorsOnNonManaged(t *testing.T) {
	s := core.MustSession(machine.IntelPascal())
	if _, err := s.Ctx.Malloc(64, "dev"); err != nil {
		t.Fatal(err)
	}
	recs := []Recommendation{{Alloc: "dev", Actions: []Action{{Advice: um.AdviseSetReadMostly}}}}
	if _, err := Apply(s.Ctx, recs); err == nil {
		t.Error("advice on device memory should fail")
	}
}

func TestRender(t *testing.T) {
	var sb strings.Builder
	Render(&sb, nil)
	if !strings.Contains(sb.String(), "no placement recommendations") {
		t.Error("empty render wrong")
	}
	sb.Reset()
	Render(&sb, []Recommendation{{
		Alloc:     "dom",
		Actions:   []Action{{Advice: um.AdviseSetReadMostly, Device: machine.CPU}},
		Rationale: "because",
	}})
	if !strings.Contains(sb.String(), "dom: SetReadMostly(CPU) — because") {
		t.Errorf("render = %q", sb.String())
	}
}

func TestApplyByLabelSkipsFreed(t *testing.T) {
	s := core.MustSession(machine.IntelPascal())
	a, err := s.Ctx.MallocManaged(64, "tmp")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Ctx.Free(a); err != nil {
		t.Fatal(err)
	}
	recs := []Recommendation{{Alloc: "tmp", Actions: []Action{{Advice: um.AdviseSetReadMostly}}}}
	n, err := ApplyByLabel(s.Ctx, recs)
	if err != nil || n != 0 {
		t.Errorf("freed allocation advised: n=%d err=%v", n, err)
	}
}

func TestRecommendationCarriesAllocID(t *testing.T) {
	plat := machine.IntelPascal()
	rep, s := analyze(t, plat)
	recs := Recommend(rep, DefaultOptions(plat))
	if len(recs) != 1 {
		t.Fatalf("recs = %v", recs)
	}
	var want int = -2
	for _, a := range s.Ctx.Space().Live() {
		if a.Label == "table" {
			want = a.ID
		}
	}
	if recs[0].AllocID != want {
		t.Errorf("AllocID = %d, want %d", recs[0].AllocID, want)
	}
}

func TestRecommendationCitesKernels(t *testing.T) {
	plat := machine.IntelPascal()
	rep, _ := analyze(t, plat)
	recs := Recommend(rep, DefaultOptions(plat))
	if len(recs) != 1 {
		t.Fatalf("recs = %v", recs)
	}
	if !strings.Contains(recs[0].Rationale, "seen in crunch") {
		t.Errorf("rationale does not cite the kernel span: %q", recs[0].Rationale)
	}
}

// TestAnnotateAttachesPredictions: Annotate stamps recommendations with
// the what-if winner of the matching allocation (by ID) and the rendered
// plan quantifies the prediction.
func TestAnnotateAttachesPredictions(t *testing.T) {
	recs := []Recommendation{
		{Alloc: "table", AllocID: 0},
		{Alloc: "other", AllocID: 7},
	}
	res := &whatif.Result{
		Observed: 2 * machine.Microsecond,
		Allocs: []whatif.AllocReport{{
			AllocID:         0,
			Label:           "table",
			WinnerPolicy:    "prefetch",
			WinnerPredicted: machine.Microsecond,
		}},
	}
	Annotate(recs, res)
	n := recs[0].WhatIf
	if n == nil {
		t.Fatal("matching recommendation not annotated")
	}
	if n.Policy != "prefetch" || n.Predicted != machine.Microsecond ||
		n.Observed != 2*machine.Microsecond || n.Delta != -machine.Microsecond {
		t.Errorf("unexpected note %+v", n)
	}
	if recs[1].WhatIf != nil {
		t.Error("uncovered allocation was annotated")
	}
	if s := recs[0].String(); !strings.Contains(s, "what-if: prefetch predicts") {
		t.Errorf("String() does not quantify the prediction: %s", s)
	}
	Annotate(recs, nil) // nil analysis is a no-op, not a panic
}
