package advisor_test

import (
	"fmt"
	"os"

	"xplacer/internal/advisor"
	"xplacer/internal/core"
	"xplacer/internal/cuda"
	"xplacer/internal/machine"
	"xplacer/internal/memsim"
)

// Example shows the measure -> advise loop: a pointer table the CPU
// updates occasionally while GPU kernels read it whole is the LULESH
// anti-pattern; the advisor recommends read-duplication for it on a PCIe
// machine.
func Example() {
	plat := machine.IntelPascal()
	s := core.MustSession(plat)
	ctx := s.Ctx

	table, _ := ctx.MallocManaged(512, "table")
	tv := memsim.Uint64s(table)
	host := ctx.Host()
	for slot := int64(0); slot < 30; slot++ {
		tv.Store(host, slot, uint64(slot))
	}
	for step := 0; step < 4; step++ {
		tv.Store(host, 1, uint64(step)) // occasional CPU update
		ctx.LaunchSync("kernel", func(e *cuda.Exec) {
			for slot := int64(0); slot < 30; slot++ {
				_ = tv.Load(e, slot)
			}
		})
		if step == 0 && s.Tracer != nil {
			s.Tracer.Table().Reset() // analyze the steady state
		}
	}

	rep := s.Diagnostic(nil, "steady state")
	recs := advisor.Recommend(rep, advisor.DefaultOptions(plat))
	advisor.Render(os.Stdout, recs)

	// Applying the plan to a live context takes one call:
	n, err := advisor.ApplyByLabel(ctx, recs)
	fmt.Printf("applied to %d allocation(s), err=%v\n", n, err)
	// Output:
	// 1 placement recommendation(s):
	//   table: SetReadMostly(CPU) — accessed by both processors, mostly read (CPU writes 3%, GPU writes 0% of touched words): read-duplicate instead of ping-ponging [seen in kernel @ 2.074us, kernel @ 73.523us, kernel @ 144.971us, +1 more]
	// applied to 1 allocation(s), err=<nil>
}
