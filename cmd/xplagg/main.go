// Command xplagg is the fleet trace aggregator: a long-running daemon
// that accepts wire-format trace streams from many instrumented client
// processes at once (see the -stream option of cmd/xplacer and
// xplrt.EnableStream), keeps per-(tenant, process) shadow/heat-map/
// pattern state, and serves live snapshots over HTTP.
//
// Usage:
//
//	xplagg -listen :9811 -http :9812          # daemon: TCP ingest + HTTP snapshots
//	xplagg -snapshot trace1.xplt trace2.xplt  # offline: ingest files, print reports
//
// HTTP endpoints (on -http):
//
//	/tenants    known (tenant, process) pairs and ingest totals (JSON)
//	/snapshot   ?tenant=T&process=P — live diag.Report JSON, the same
//	            schema `xplacer -json` emits
//	/perfetto   ?tenant=T&process=P — kernel spans as Chrome trace JSON
//	/metrics    Prometheus text-format counters (xplagg_*)
//
// Positional arguments are trace files (captured with
// `-stream file:PATH`), ingested sequentially through the same decoder
// the TCP path uses before the listeners start.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
)

import "xplacer/internal/agg"

func main() {
	var (
		listen   = flag.String("listen", "", "accept client trace streams on this TCP address (e.g. :9811)")
		httpAddr = flag.String("http", "", "serve snapshots and metrics on this HTTP address (e.g. :9812)")
		snapshot = flag.Bool("snapshot", false, "after ingesting the trace-file arguments, print every proc's report JSON to stdout and exit")
	)
	flag.Parse()

	g := agg.New()

	// File ingest first, sequentially: deterministic for goldens.
	for _, path := range flag.Args() {
		if err := g.IngestFile(path); err != nil {
			fatal(err)
		}
	}

	if *snapshot {
		for _, p := range g.Procs() {
			rep := p.Report()
			if err := rep.JSON(os.Stdout); err != nil {
				fatal(err)
			}
		}
		return
	}

	if *listen == "" && *httpAddr == "" {
		fatal(fmt.Errorf("nothing to do: pass -listen/-http for daemon mode, or -snapshot with trace files"))
	}

	errc := make(chan error, 2)
	if *httpAddr != "" {
		hl, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "xplagg: http on %s\n", hl.Addr())
		go func() { errc <- http.Serve(hl, g.Handler()) }()
	}
	if *listen != "" {
		l, err := net.Listen("tcp", *listen)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "xplagg: listening on %s\n", l.Addr())
		go func() {
			errc <- g.Serve(l, func(err error) {
				fmt.Fprintln(os.Stderr, "xplagg:", err)
			})
		}()
	}
	fatal(<-errc)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xplagg:", err)
	os.Exit(1)
}
