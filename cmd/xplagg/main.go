// Command xplagg is the fleet trace aggregator: a long-running daemon
// that accepts wire-format trace streams from many instrumented client
// processes at once (see the -stream option of cmd/xplacer and
// xplrt.EnableStream), keeps per-(tenant, process) shadow/heat-map/
// pattern state, and serves live snapshots over HTTP. Ingest is
// pipelined: connection goroutines only decode, and one apply worker per
// (tenant, process) drains a bounded queue, so the daemon scales with
// cores while preserving per-stream frame order.
//
// Usage:
//
//	xplagg -listen :9811 -http :9812          # daemon: TCP ingest + HTTP snapshots
//	xplagg -snapshot trace1.xplt trace2.xplt  # offline: ingest files, print reports
//
// HTTP endpoints (on -http):
//
//	/tenants    known (tenant, process) pairs and ingest totals (JSON)
//	/snapshot   ?tenant=T&process=P — diag.Report JSON, the same schema
//	            `xplacer -json` emits; at most -snapshot-stale old
//	            (&fresh=1 forces an exact snapshot)
//	/perfetto   ?tenant=T&process=P — kernel spans as Chrome trace JSON
//	/metrics    Prometheus text-format counters (xplagg_*), including
//	            per-proc apply-queue depth and ingest stalls
//	/debug/pprof/   Go profiling endpoints, only with -pprof
//
// Positional arguments are trace files (captured with
// `-stream file:PATH`), ingested sequentially through the same decoder
// the TCP path uses before the listeners start.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
)

import "xplacer/internal/agg"

func main() {
	var (
		listen    = flag.String("listen", "", "accept client trace streams on this TCP address (e.g. :9811)")
		httpAddr  = flag.String("http", "", "serve snapshots and metrics on this HTTP address (e.g. :9812)")
		snapshot  = flag.Bool("snapshot", false, "after ingesting the trace-file arguments, print every proc's report JSON to stdout and exit")
		queue     = flag.Int("queue", agg.DefaultQueueDepth, "per-process apply queue depth (decoded frames buffered between a connection's decoder and the apply worker; full queues stall only that connection)")
		staleness = flag.Duration("snapshot-stale", agg.DefaultSnapshotMaxAge, "maximum age of the published snapshot /snapshot and /perfetto serve before rebuilding (the staleness bound; 0 rebuilds whenever ingest is ahead)")
		pprofOn   = flag.Bool("pprof", false, "expose Go profiling at /debug/pprof/ on the -http address")
	)
	flag.Parse()

	g := agg.New(agg.WithQueueDepth(*queue), agg.WithSnapshotMaxAge(*staleness))

	// File ingest first, sequentially: deterministic for goldens.
	for _, path := range flag.Args() {
		if err := g.IngestFile(path); err != nil {
			fatal(err)
		}
	}

	if *snapshot {
		for _, p := range g.Procs() {
			rep := p.Report()
			if err := rep.JSON(os.Stdout); err != nil {
				fatal(err)
			}
		}
		return
	}

	if *listen == "" && *httpAddr == "" {
		fatal(fmt.Errorf("nothing to do: pass -listen/-http for daemon mode, or -snapshot with trace files"))
	}

	errc := make(chan error, 2)
	if *httpAddr != "" {
		hl, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			fatal(err)
		}
		h := g.Handler()
		if *pprofOn {
			// Profiling rides the same mux so ingest hot spots (decode,
			// apply workers, snapshot builds) are inspectable in production:
			//   go tool pprof http://host:port/debug/pprof/profile
			mux := http.NewServeMux()
			mux.Handle("/", h)
			mux.HandleFunc("/debug/pprof/", pprof.Index)
			mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
			h = mux
		}
		fmt.Fprintf(os.Stderr, "xplagg: http on %s\n", hl.Addr())
		go func() { errc <- http.Serve(hl, h) }()
	}
	if *listen != "" {
		l, err := net.Listen("tcp", *listen)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "xplagg: listening on %s\n", l.Addr())
		go func() {
			errc <- g.Serve(l, func(err error) {
				fmt.Fprintln(os.Stderr, "xplagg:", err)
			})
		}()
	}
	fatal(<-errc)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xplagg:", err)
	os.Exit(1)
}
