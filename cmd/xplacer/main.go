// Command xplacer runs one of the benchmark applications under XPlacer
// instrumentation on a simulated heterogeneous platform and prints the
// diagnostics — the paper's §III-D workflow in one step.
//
// Usage:
//
//	xplacer -app lulesh     [-platform Intel+Pascal] [-size 8] [-steps 16] [-variant baseline] [-diag-every 1] [-csv]
//	xplacer -app lulesh-mp  [-size 65536] [-cycles 3] [-steps 10] [-analysis-steps 4] [-static managed] [-adapt]
//	xplacer -app sw         [-size 100] [-rotated] [-diag-every 0]
//	xplacer -app pathfinder [-cols 1024] [-rows 101] [-pyramid 20] [-overlap]
//	xplacer -app backprop|gaussian|lud|nn|cfd [-size N] [-optimize]
//
// The final diagnostic (summaries, access maps for -maps, a per-word
// access-frequency heat map for -heatmap, per-kernel access-pattern
// classes for -patterns, anti-pattern findings with remedies) is printed
// to stdout. -timeline exports the run's simulated
// event timeline as Chrome trace-format JSON (loadable in Perfetto or
// chrome://tracing); -fail-on makes the exit status reflect selected
// finding kinds, for CI gates; -whatif captures the run's access
// aggregates and replays them under candidate placements, predicting the
// best policy per allocation and the whole-run speedup of applying them;
// -adapt attaches the closed-loop controller, which re-runs that analysis
// incrementally every -adapt-window of simulated time and applies winning
// placements mid-run (decision log in the report, JSON key "adaptive").
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"strings"
	"time"

	"xplacer/internal/adapt"
	"xplacer/internal/advisor"
	"xplacer/internal/apps/lulesh"
	"xplacer/internal/apps/rodinia"
	"xplacer/internal/apps/sw"
	"xplacer/internal/core"
	"xplacer/internal/detect"
	"xplacer/internal/diag"
	"xplacer/internal/machine"
	"xplacer/internal/pattern"
	"xplacer/internal/record"
	"xplacer/internal/shadow"
	"xplacer/internal/spill"
	"xplacer/internal/timeline"
	"xplacer/internal/whatif"
	"xplacer/internal/wire"
)

func main() {
	var (
		app       = flag.String("app", "lulesh", "application: lulesh, lulesh-mp, sw, pathfinder, backprop, gaussian, lud, nn, cfd")
		platName  = flag.String("platform", "Intel+Pascal", "platform: Intel+Pascal, Intel+Volta, IBM+Volta")
		size      = flag.Int("size", 8, "problem size (app-specific; lulesh-mp: element count, use e.g. 65536)")
		steps     = flag.Int("steps", 16, "lulesh timesteps (lulesh-mp: solve steps per cycle)")
		variant   = flag.String("variant", "baseline", "lulesh variant: baseline, readmostly, preferred, accessedby, dupdomain")
		cycles    = flag.Int("cycles", 3, "lulesh-mp: solve→analysis cycles")
		anaSteps  = flag.Int("analysis-steps", 4, "lulesh-mp: analysis sweeps per cycle")
		static    = flag.String("static", "", "lulesh-mp: whole-run placement: managed, preferred-gpu, preferred-cpu, read-mostly, accessed-by, explicit-copy")
		rotated   = flag.Bool("rotated", false, "sw: rotated matrix layout")
		overlap   = flag.Bool("overlap", false, "pathfinder: overlap transfers with compute")
		optimize  = flag.Bool("optimize", false, "backprop/gaussian: apply the diagnosed fixes")
		cols      = flag.Int("cols", 1024, "pathfinder columns")
		rows      = flag.Int("rows", 101, "pathfinder rows")
		pyramid   = flag.Int("pyramid", 20, "pathfinder pyramid height")
		diagEvery = flag.Int("diag-every", 0, "emit a diagnostic every N iterations (0: end only)")
		csv       = flag.Bool("csv", false, "emit the final report as CSV")
		jsonOut   = flag.Bool("json", false, "emit the final report as JSON")
		maps      = flag.String("maps", "", "also print access maps for this allocation label")
		heatmap   = flag.Bool("heatmap", false, "record per-word access frequencies and include the heat map in the final report")
		patterns  = flag.Bool("patterns", false, "classify per-kernel access patterns (sequential/strided/scatter/random) and include them in the final report")
		advise    = flag.Bool("advise", false, "derive placement recommendations from the final report")
		profile   = flag.Bool("profile", false, "print the simulated-time breakdown and per-kernel profile")
		timelineF = flag.String("timeline", "", "export the event timeline as Chrome trace JSON to this file (view in Perfetto)")
		failOn    = flag.String("fail-on", "", "comma-separated finding kinds that make the exit status non-zero (e.g. alternating-cpu-gpu-access,unused-allocation)")
		whatIf    = flag.Bool("whatif", false, "capture the run's access aggregates and predict the best placement per allocation by replay")
		wiWorkers = flag.Int("whatif-workers", 0, "candidate-replay worker count for -whatif/-adapt (0: GOMAXPROCS)")
		adaptF    = flag.Bool("adapt", false, "attach the closed-loop controller: analyze capture windows online and apply winning placements mid-run")
		adaptWin  = flag.Duration("adapt-window", 2*time.Millisecond, "with -adapt: minimum simulated time per capture window")
		adaptThr  = flag.Float64("adapt-threshold", adapt.DefaultMinGainPct, "with -adapt: minimum predicted window gain (percent) before a placement counts toward confirmation")
		hmEpoch   = flag.Duration("heatmap-epoch", 0, "with -heatmap: close a heat-map epoch every interval of simulated time (e.g. 100us)")
		budget    = flag.Int("trace-budget", 0, "with -heatmap/-patterns: retain at most this many bytes of trace in memory, spilling the access log to disk and replaying it for the final report (0: unbounded, analyze live)")
		seed      = flag.Int64("seed", 1, "input seed")
		stream    = flag.String("stream", "", "stream the trace out-of-process to an xplagg aggregator: host:port dials TCP, file:PATH (or a plain path) writes a trace file for later ingest")
		streamTen = flag.String("stream-tenant", "default", "with -stream: tenant id in the stream handshake")
		streamPol = flag.String("stream-policy", "block", "with -stream: backpressure policy when the outbound queue is full: block (lose nothing) or drop (never stall, count losses)")
		streamBud = flag.Int("stream-budget", 0, "with -stream: outbound queue budget in bytes (0: default)")
	)
	flag.Parse()

	var failKinds []detect.Kind
	if *failOn != "" {
		for _, name := range strings.Split(*failOn, ",") {
			k, err := detect.KindByName(strings.TrimSpace(name))
			if err != nil {
				fatal(err)
			}
			failKinds = append(failKinds, k)
		}
	}

	plat, err := machine.ByName(*platName)
	if err != nil {
		fatal(err)
	}
	s, err := core.NewSession(plat)
	if err != nil {
		fatal(err)
	}
	if *profile {
		s.Ctx.SetProfiling(true)
	}
	if *whatIf {
		s.Ctx.SetWhatIfCapture(true)
	}
	var ctrl *adapt.Controller
	if *adaptF {
		// The controller enables capture itself and closes windows at
		// kernel-launch drain boundaries from here on.
		ctrl = adapt.Attach(s.Ctx, adapt.Config{
			Window:     machine.Duration(adaptWin.Nanoseconds()) * machine.Nanosecond,
			MinGainPct: *adaptThr,
			Workers:    *wiWorkers,
		})
	}
	var hm *record.HeatmapSink
	var ps *pattern.Sink
	var sp *spill.Sink
	if *budget > 0 && (*heatmap || *patterns) {
		// Bounded-memory mode: instead of live heat-map/pattern state, the
		// drained batches serialize to a spill log capped at -trace-budget
		// bytes of retained memory, and the analyses replay the log after
		// the run. The shadow table, findings, and what-if capture are
		// unaffected — they retain O(allocations), not O(accesses).
		sp = spill.New(*budget)
		sp.SetClock(s.Ctx.Now)
		s.Tracer.EnableSpill(sp)
		defer sp.Close()
	} else {
		if *heatmap {
			// Observe access frequencies against the tracer's table; the sink
			// sees every batch the recording engine drains from here on.
			hm = record.NewHeatmapSink(s.Tracer.Table())
			if *hmEpoch > 0 {
				every := machine.Duration(hmEpoch.Nanoseconds()) * machine.Nanosecond
				hm.RotateOnClock(every, s.Ctx.Now)
			}
			s.Tracer.AddSink(hm)
		}
		if *patterns {
			// Classify access structure per (kernel span, allocation, device);
			// span start times come from the simulated clock.
			ps = s.Tracer.EnablePatterns(s.Ctx.Now)
		}
	}

	var ss *wire.StreamSink
	var streamClose func() error
	if *stream != "" {
		var pol wire.Policy
		switch *streamPol {
		case "block":
			pol = wire.Block
		case "drop":
			pol = wire.Drop
		default:
			fatal(fmt.Errorf("unknown -stream-policy %q (want block or drop)", *streamPol))
		}
		var w io.WriteCloser
		switch {
		case strings.HasPrefix(*stream, "file:"):
			f, err := os.Create(strings.TrimPrefix(*stream, "file:"))
			if err != nil {
				fatal(err)
			}
			w = f
		case strings.Contains(*stream, ":"):
			conn, err := net.Dial("tcp", *stream)
			if err != nil {
				fatal(err)
			}
			w = conn
		default:
			f, err := os.Create(*stream)
			if err != nil {
				fatal(err)
			}
			w = f
		}
		ss, err = wire.NewStreamSink(w, wire.Config{
			Hello: wire.Hello{
				Tenant:   *streamTen,
				Process:  *app,
				Platform: plat.Name,
				Policy:   byte(pol),
			},
			Policy:     pol,
			QueueBytes: *streamBud,
			Clock:      s.Ctx.Now,
		})
		if err != nil {
			fatal(err)
		}
		s.Tracer.EnableStream(ss)
		streamClose = func() error {
			if err := ss.Close(); err != nil {
				return err
			}
			return w.Close()
		}
	}

	switch *app {
	case "lulesh":
		v, err := lulesh.VariantByName(*variant)
		if err != nil {
			fatal(err)
		}
		res, err := lulesh.Run(s, lulesh.Config{
			Size: *size, Timesteps: *steps, Variant: v,
			DiagEvery: *diagEvery, DiagOut: os.Stdout,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("final origin energy: %g\n", res.FinalOriginEnergy)
	case "lulesh-mp":
		res, err := lulesh.RunMultiPhase(s, lulesh.MultiPhaseConfig{
			Elems: *size, Cycles: *cycles, SolveSteps: *steps, AnalysisSteps: *anaSteps,
			Static: lulesh.StaticPolicy(*static),
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("final origin energy: %g, checksum: %g\n", res.FinalOriginEnergy, res.Checksum)
	case "sw":
		res, err := sw.Run(s, sw.Config{
			N: *size, M: *size, Seed: *seed, Rotated: *rotated,
			DiagEvery: *diagEvery, DiagOut: os.Stdout, Traceback: true,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("best score: %d at (%d,%d), path length %d\n", res.Score, res.EndI, res.EndJ, res.PathLen)
	case "pathfinder":
		res, err := rodinia.RunPathfinder(s, rodinia.PathfinderConfig{
			Cols: *cols, Rows: *rows, Pyramid: *pyramid, Seed: *seed,
			Overlap: *overlap, DiagEvery: *diagEvery, DiagOut: os.Stdout,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("min path: %d in %d iterations\n", res.MinPath, res.Iterations)
	case "backprop":
		res, err := rodinia.RunBackprop(s, rodinia.BackpropConfig{In: *size, Hidden: 16, Seed: *seed, Optimize: *optimize})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("hidden sum: %g\n", res.HiddenSum)
	case "gaussian":
		res, err := rodinia.RunGaussian(s, rodinia.GaussianConfig{N: *size, Optimize: *optimize})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("x[0] = %g\n", res.X[0])
	case "lud":
		res, err := rodinia.RunLUD(s, rodinia.LUDConfig{N: *size, Seed: *seed, DiagEvery: *diagEvery, DiagOut: os.Stdout})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("LU[0] = %g, reconstruction error %g\n", res.LU[0], rodinia.LUDVerify(res.LU, *size, *seed))
	case "nn":
		res, err := rodinia.RunNN(s, rodinia.NNConfig{Records: *size, K: 5, QueryLat: 30, QueryLng: 90, Seed: *seed})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("nearest distances: %v\n", res.Distances)
	case "cfd":
		res, err := rodinia.RunCFD(s, rodinia.CFDConfig{Cells: *size, Neighbors: 4, Iterations: 4, Seed: *seed})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("density sum: %g\n", res.DensitySum)
	default:
		fatal(fmt.Errorf("unknown app %q", *app))
	}

	if ctrl != nil {
		// Close the final window over the trailing events and detach; the
		// decision log rides in the report below.
		if err := ctrl.Finish(); err != nil {
			fatal(err)
		}
	}

	if sp != nil {
		// Replay the spilled access log into fresh heat-map/pattern sinks,
		// before the final diagnostic drops freed entries. Replayed accesses
		// all predate the frees (TraceFree drains first, and the log
		// preserves drain order), so freed entries are made visible for the
		// duration of the replay to resolve them the way the live sinks did.
		s.Tracer.Flush()
		var replayNow machine.Duration
		clock := func() machine.Duration { return replayNow }
		if *heatmap {
			hm = record.NewHeatmapSink(s.Tracer.Table())
			if *hmEpoch > 0 {
				every := machine.Duration(hmEpoch.Nanoseconds()) * machine.Nanosecond
				hm.RotateOnClock(every, clock)
			}
		}
		if *patterns {
			ps = pattern.NewSink(s.Tracer.Table())
			ps.SetClock(clock)
		}
		var freed []*shadow.Entry
		for _, e := range s.Tracer.Table().Entries() {
			if e.Freed {
				e.Freed = false
				freed = append(freed, e)
			}
		}
		err := sp.Replay(
			func(b []shadow.Access) {
				if hm != nil {
					hm.Apply(b, nil)
				}
				if ps != nil {
					ps.Apply(b, nil)
				}
			},
			func(name string, at machine.Duration) {
				replayNow = at
				if ps != nil {
					ps.BeginSpan(name)
				}
			},
			func(at machine.Duration) { replayNow = at },
		)
		for _, e := range freed {
			e.Freed = true
		}
		if err != nil {
			fatal(err)
		}
	}

	// Access maps before the final (resetting) diagnostic.
	if *maps != "" {
		printed := false
		for _, a := range s.Ctx.Space().Live() {
			if a.Label == *maps {
				if e := diag.EntryOf(s.Tracer, a); e != nil {
					for _, c := range []diag.MapCategory{diag.CPUWrites, diag.GPUWrites, diag.CPUReads, diag.GPUReads} {
						fmt.Println(diag.AccessMap(e, c, 64))
					}
					printed = true
				}
			}
		}
		if !printed {
			fmt.Fprintf(os.Stderr, "xplacer: no traced allocation labeled %q\n", *maps)
		}
	}

	rep := s.Diagnostic(nil, "end of run")
	if hm != nil {
		// Diagnostic flushed the tracer, so the heat counts are complete.
		rep.Heatmap = diag.SummarizeHeatmap(hm, 64)
	}
	if ps != nil {
		// Likewise quiescent; penalties are scaled to this platform's
		// coalescing knob so the report matches what the cost model charged.
		rep.Patterns = diag.SummarizePatterns(ps, plat.CoalescePenaltyPct)
		rep.Patterns.AnnotateHeatmap(rep.Heatmap)
	}
	if *whatIf {
		// The diagnostic flushed the trailing host window, so the trace is
		// complete. The analysis rides in the report (JSON key "whatif").
		wi, err := whatif.AnalyzeParallel(s.Ctx.Timeline().Events(), plat, *wiWorkers)
		if err != nil {
			fatal(err)
		}
		rep.WhatIf = wi
	}
	if ctrl != nil {
		rep.Adaptive = ctrl.Report()
	}
	switch {
	case *jsonOut:
		if err := rep.JSON(os.Stdout); err != nil {
			fatal(err)
		}
	case *csv:
		rep.CSV(os.Stdout)
	default:
		rep.Text(os.Stdout)
	}
	if rep.WhatIf != nil && !*jsonOut && !*csv {
		rep.WhatIf.Text(os.Stdout)
	}
	if rep.Adaptive != nil && !*jsonOut && !*csv {
		rep.Adaptive.Text(os.Stdout)
	}
	if *advise {
		recs := advisor.Recommend(rep, advisor.DefaultOptions(plat))
		advisor.Annotate(recs, rep.WhatIf)
		advisor.AnnotateAdaptive(recs, rep.Adaptive)
		advisor.Render(os.Stdout, recs)
	}
	if *profile {
		timeline.Summarize(s.Ctx.Timeline().Events()).Text(os.Stdout, plat)
		s.Ctx.WriteKernelProfile(os.Stdout, *csv)
	}
	if *timelineF != "" {
		f, err := os.Create(*timelineF)
		if err != nil {
			fatal(err)
		}
		meta := map[string]string{"app": *app, "platform": plat.Name}
		if err := timeline.WriteChromeTrace(f, s.Ctx.Timeline().Events(), meta); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("timeline: %d events written to %s\n", s.Ctx.Timeline().Len(), *timelineF)
	}
	if streamClose != nil {
		// The final diagnostic flushed the tracer, so every access batch is
		// already in the stream queue; Close cuts the tail segment, writes
		// the bye totals, and drains the writer.
		if err := streamClose(); err != nil {
			fatal(err)
		}
		if segs, recs, bytes := ss.Dropped(); segs > 0 {
			fmt.Fprintf(os.Stderr, "xplacer: stream dropped %d segment(s): %d records, %d bytes\n", segs, recs, bytes)
		}
	}

	fmt.Printf("simulated time on %s: %v\n", plat.Name, s.SimTime())

	if len(failKinds) > 0 {
		matched := 0
		for _, r := range s.Reports() {
			for _, f := range r.Findings {
				for _, k := range failKinds {
					if f.Kind == k {
						matched++
					}
				}
			}
		}
		if matched > 0 {
			fmt.Fprintf(os.Stderr, "xplacer: %d finding(s) matched -fail-on %s\n", matched, *failOn)
			os.Exit(2)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xplacer:", err)
	os.Exit(1)
}
