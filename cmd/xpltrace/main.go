// Command xpltrace validates and summarizes Chrome trace-format timelines
// exported by xplacer -timeline: the JSON must parse, event timestamps
// must be monotonically ordered, and spans within one track must be
// properly nested. The exit status is non-zero for an invalid trace, so
// CI can gate on "the exported timeline is loadable".
//
// Usage:
//
//	xpltrace -check out.json
package main

import (
	"flag"
	"fmt"
	"os"

	"xplacer/internal/timeline"
)

func main() {
	check := flag.String("check", "", "trace file to validate")
	requireOverlap := flag.Bool("require-overlap", false, "also fail unless spans on different tracks overlap (async copy hidden behind compute)")
	flag.Parse()

	if *check == "" {
		fmt.Fprintln(os.Stderr, "xpltrace: -check FILE is required")
		os.Exit(2)
	}
	data, err := os.ReadFile(*check)
	if err != nil {
		fatal(err)
	}
	res, err := timeline.CheckChromeTrace(data)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s: valid trace: %d spans, %d instants, %d tracks, cross-track overlap: %t\n",
		*check, res.Spans, res.Instants, res.Tracks, res.Overlap)
	if *requireOverlap && !res.Overlap {
		fatal(fmt.Errorf("%s: no cross-track overlap found (expected async copies to overlap compute)", *check))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xpltrace:", err)
	os.Exit(1)
}
