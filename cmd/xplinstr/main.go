// Command xplinstr is XPlacer's source instrumentation tool for Go files —
// the role the ROSE+plugin invocation plays in the paper's workflow
// (§III-D step 3). It rewrites heap accesses into xplrt trace calls and
// expands //xpl:replace and //xpl:diagnostic pragmas.
//
// Usage:
//
//	xplinstr [-o out.go | -w | -outdir dir] [-runtime importpath] [-support file.go]... input.go [more.go ...]
//
// With one input file, -o writes the result to a file (default stdout) and
// -w rewrites in place. With several input files they are instrumented
// together as one package (cross-file types resolve); use -outdir or -w.
//
// The instrumented files import the runtime package (default
// "xplacer/xplrt"); compile them with the rest of the program and run it
// to obtain the diagnostics (§III-D steps 4-5).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"xplacer/internal/instr"
)

type multiFlag []string

func (m *multiFlag) String() string { return fmt.Sprint(*m) }

func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

func main() {
	out := flag.String("o", "", "output file for a single input (default: stdout)")
	outDir := flag.String("outdir", "", "output directory for multiple inputs")
	inPlace := flag.Bool("w", false, "rewrite the input file(s) in place")
	runtimePkg := flag.String("runtime", "", `runtime import path (default "xplacer/xplrt")`)
	var support multiFlag
	flag.Var(&support, "support", "additional same-package source file for type checking only (repeatable)")
	flag.Parse()

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: xplinstr [-o out.go | -w | -outdir dir] [-runtime path] [-support file.go]... input.go [more.go ...]")
		os.Exit(2)
	}
	opt := instr.Options{RuntimePackage: *runtimePkg}
	for _, s := range support {
		b, err := os.ReadFile(s)
		if err != nil {
			fatal(err)
		}
		opt.Support = append(opt.Support, instr.NamedSource{Name: s, Src: b})
	}

	var inputs []instr.NamedSource
	for _, name := range flag.Args() {
		b, err := os.ReadFile(name)
		if err != nil {
			fatal(err)
		}
		inputs = append(inputs, instr.NamedSource{Name: name, Src: b})
	}

	results, err := instr.Package(inputs, opt)
	if err != nil {
		fatal(err)
	}

	switch {
	case *inPlace:
		for name, src := range results {
			if err := os.WriteFile(name, src, 0o644); err != nil {
				fatal(err)
			}
		}
	case *outDir != "":
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fatal(err)
		}
		for name, src := range results {
			if err := os.WriteFile(filepath.Join(*outDir, filepath.Base(name)), src, 0o644); err != nil {
				fatal(err)
			}
		}
	case *out != "" && len(inputs) == 1:
		if err := os.WriteFile(*out, results[inputs[0].Name], 0o644); err != nil {
			fatal(err)
		}
	case len(inputs) == 1:
		if _, err := os.Stdout.Write(results[inputs[0].Name]); err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("multiple inputs need -w or -outdir"))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xplinstr:", err)
	os.Exit(1)
}
