// Command xplbench regenerates the paper's evaluation tables and figures
// (§IV) on the simulated platforms.
//
// Usage:
//
//	xplbench [-exp all|fig4|fig5|fig6|fig7|fig8|fig9|fig10|fig11|table2|table3] [-quick]
//
// Speedup figures report simulated time; Table III reports wall-clock
// overhead plus a per-access microbenchmark. -quick shrinks the sweeps for
// a fast smoke run.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"xplacer/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: all, fig4, fig5, fig6, fig7, fig8, fig9, fig10, fig11, table2, table3, ablation")
	quick := flag.Bool("quick", false, "use reduced problem sizes")
	csv := flag.Bool("csv", false, "emit speedup figures (fig6/fig9/fig11) as CSV")
	flag.Parse()

	run := func(name string, f func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		fmt.Printf("==================== %s ====================\n", strings.ToUpper(name))
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "xplbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	run("fig4", func() error { return bench.Fig4(os.Stdout) })
	run("fig5", func() error { return bench.Fig5(os.Stdout) })
	run("fig6", func() error {
		opt := bench.DefaultFig6Options()
		if *quick {
			opt = bench.QuickFig6Options()
		}
		rows, err := bench.Fig6(opt)
		if err != nil {
			return err
		}
		if *csv {
			bench.SpeedupsCSV(os.Stdout, rows)
			return nil
		}
		bench.RenderFig6(os.Stdout, rows)
		return nil
	})
	run("fig7", func() error { return bench.Fig7(os.Stdout) })
	run("fig8", func() error { return bench.Fig8(os.Stdout) })
	run("fig9", func() error {
		opt := bench.DefaultFig9Options()
		if *quick {
			opt = bench.QuickFig9Options()
		}
		rows, err := bench.Fig9(opt)
		if err != nil {
			return err
		}
		if *csv {
			bench.SpeedupsCSV(os.Stdout, rows)
			return nil
		}
		bench.RenderFig9(os.Stdout, rows)
		return nil
	})
	run("fig10", func() error { return bench.Fig10(os.Stdout) })
	run("fig11", func() error {
		opt := bench.DefaultFig11Options()
		if *quick {
			opt = bench.QuickFig11Options()
		}
		rows, err := bench.Fig11(opt)
		if err != nil {
			return err
		}
		if *csv {
			bench.SpeedupsCSV(os.Stdout, rows)
			return nil
		}
		bench.RenderFig11(os.Stdout, rows)
		return nil
	})
	run("table2", func() error {
		rows, err := bench.Table2()
		if err != nil {
			return err
		}
		bench.RenderTable2(os.Stdout, rows)
		return nil
	})
	run("table3", func() error {
		rows, err := bench.Table3(bench.DefaultTable3Workloads())
		if err != nil {
			return err
		}
		bench.RenderTable3(os.Stdout, rows)
		return nil
	})
	run("ablation", func() error {
		return bench.RenderAblations(os.Stdout, *quick)
	})
}
