// Top-level benchmarks: one per table and figure of the paper's
// evaluation (§IV). Each benchmark regenerates its experiment and reports
// the headline quantity as a custom metric, so
//
//	go test -bench=. -benchmem
//
// reproduces the whole evaluation. The wider sweeps behind the figures
// live in internal/bench and cmd/xplbench.
package xplacer_test

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"runtime"
	"strings"
	"sync"
	"testing"

	"xplacer/internal/agg"
	"xplacer/internal/bench"
	"xplacer/internal/machine"
)

// reportSpeedups attaches each row's factor as a custom metric.
func reportSpeedups(b *testing.B, rows []bench.Speedup, filter func(bench.Speedup) bool) {
	for _, r := range rows {
		if filter != nil && !filter(r) {
			continue
		}
		name := strings.NewReplacer(" ", "", "+", "", "=", "").Replace(
			r.Platform + "_" + r.Label + "_" + r.Variant + "_speedup")
		b.ReportMetric(r.Factor(), name)
	}
}

// BenchmarkFig4LuleshDiagnostic regenerates the Fig. 4 diagnostic output.
func BenchmarkFig4LuleshDiagnostic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.Fig4(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5LuleshAccessMaps regenerates the Fig. 5 domain-object maps.
func BenchmarkFig5LuleshAccessMaps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.Fig5(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6LuleshSpeedup regenerates a reduced Fig. 6 sweep and
// reports the remedies' speedups on Intel+Pascal and IBM+Volta.
func BenchmarkFig6LuleshSpeedup(b *testing.B) {
	opt := bench.Fig6Options{
		Sizes:     []int{8},
		Timesteps: 12,
		Platforms: []*machine.Platform{machine.IntelPascal(), machine.IBMVolta()},
	}
	var rows []bench.Speedup
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.Fig6(opt)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSpeedups(b, rows, nil)
}

// BenchmarkFig7SmithWatermanBoundary regenerates the Fig. 7 maps.
func BenchmarkFig7SmithWatermanBoundary(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.Fig7(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8SmithWatermanIteration regenerates the Fig. 8 maps.
func BenchmarkFig8SmithWatermanIteration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.Fig8(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9SmithWaterman regenerates a reduced Fig. 9 sweep: the
// rotated layout vs the baseline, in memory and over-subscribed (4 KiB
// pages keep the over-subscription meaningful at these reduced sizes).
func BenchmarkFig9SmithWaterman(b *testing.B) {
	pascal, ibm := machine.IntelPascal().Clone(), machine.IBMVolta().Clone()
	pascal.PageSize, ibm.PageSize = 4096, 4096
	opt := bench.Fig9Options{
		Sizes:     []int{64, 96, 100},
		Platforms: []*machine.Platform{pascal, ibm},
	}
	var rows []bench.Speedup
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.Fig9(opt)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSpeedups(b, rows, nil)
}

// BenchmarkFig10PathfinderMaps regenerates the Fig. 10 maps.
func BenchmarkFig10PathfinderMaps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.Fig10(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig11Pathfinder regenerates a reduced Fig. 11 sweep: the
// transfer-overlap optimization on both interconnects.
func BenchmarkFig11Pathfinder(b *testing.B) {
	opt := bench.Fig11Options{
		Cols:      4096,
		Rows:      []int{600},
		Pyramid:   20,
		Platforms: []*machine.Platform{machine.IntelPascal(), machine.IBMVolta()},
	}
	var rows []bench.Speedup
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.Fig11(opt)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSpeedups(b, rows, nil)
}

// BenchmarkTable2RodiniaFindings regenerates the Table II analysis of all
// six Rodinia benchmarks.
func BenchmarkTable2RodiniaFindings(b *testing.B) {
	var rows []bench.Table2Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.Table2()
		if err != nil {
			b.Fatal(err)
		}
	}
	total := 0
	for _, r := range rows {
		total += len(r.Findings)
	}
	b.ReportMetric(float64(total), "findings")
}

// reportHotPath runs both recorders b.N times and reports each path's
// best (minimum) per-access cost — the standard noise-robust estimate —
// plus their ratio.
func reportHotPath(b *testing.B, goroutines, total int) {
	sharded, global := math.Inf(1), math.Inf(1)
	for i := 0; i < b.N; i++ {
		sharded = math.Min(sharded, bench.TraceHotPath(goroutines, total))
		global = math.Min(global, bench.GlobalLockHotPath(goroutines, total))
	}
	b.ReportMetric(sharded, "sharded_ns_per_access")
	b.ReportMetric(global, "globallock_ns_per_access")
	if sharded > 0 {
		b.ReportMetric(global/sharded, "speedup_x")
	}
}

// BenchmarkTraceOverheadParallel compares the buffered recording hot path
// against the pre-change global-lock design at 8 concurrent goroutines.
// The acceptance bar is speedup_x >= 2.
func BenchmarkTraceOverheadParallel(b *testing.B) {
	reportHotPath(b, 8, 1<<20)
}

// BenchmarkTraceOverheadSingle is the single-goroutine regression guard:
// the buffered path must not cost more than ~10% over the global-lock
// design without concurrency (in practice the batch apply's lookup cache
// makes it faster).
func BenchmarkTraceOverheadSingle(b *testing.B) {
	reportHotPath(b, 1, 1<<20)
}

// BenchmarkTraceOverheadPatternSink compares the recording hot path with
// and without the access-pattern classifier sink attached. The sink adds
// nothing to the buffered append; its cost is paid at drain time — one
// delta fold per scalar access, O(1) per RLE range record — so the
// all-scalar workload here is its worst case. Acceptance bar:
// overhead_x < 2 (range-coalesced workloads see no measurable change).
func BenchmarkTraceOverheadPatternSink(b *testing.B) {
	const total = 1 << 20
	bare, classified := math.Inf(1), math.Inf(1)
	for i := 0; i < b.N; i++ {
		bare = math.Min(bare, bench.TraceHotPath(1, total))
		classified = math.Min(classified, bench.TraceHotPathPatterns(1, total))
	}
	b.ReportMetric(bare, "bare_ns_per_access")
	b.ReportMetric(classified, "pattern_ns_per_access")
	if bare > 0 {
		b.ReportMetric(classified/bare, "overhead_x")
	}
}

// BenchmarkTraceRangeSweep measures the run-length-encoded range path
// against the scalar buffered path on the same sweep workload. One
// ScopeRange call replaces a block's worth of ScopeR calls, so the
// per-access figure is the amortized cost of covering one element. The
// acceptance bar for the contiguous shape is range_speedup_x >= 3 over
// the scalar buffered path.
func BenchmarkTraceRangeSweep(b *testing.B) {
	const total = 1 << 20
	for _, c := range []struct {
		name   string
		stride int
	}{
		{"Contiguous", 1},
		{"Strided", 4},
	} {
		b.Run(c.name, func(b *testing.B) {
			ranged, scalar := math.Inf(1), math.Inf(1)
			for i := 0; i < b.N; i++ {
				ranged = math.Min(ranged, bench.RangeSweepHotPath(1, total, c.stride))
				scalar = math.Min(scalar, bench.TraceHotPath(1, total))
			}
			b.ReportMetric(ranged, "range_ns_per_access")
			b.ReportMetric(scalar, "scalar_ns_per_access")
			if ranged > 0 {
				b.ReportMetric(scalar/ranged, "range_speedup_x")
			}
		})
	}
}

// BenchmarkShadowBulkApply measures the drain-side shadow application:
// one recorded access spanning a 4096-word block (applied word-at-a-time
// over 8 shadow bytes per step) against 4096 single-word accesses through
// the table-driven per-byte update. The bulk path is what grouped batch
// application rides on, so its advantage here bounds what the drain can
// save on contiguous traffic.
func BenchmarkShadowBulkApply(b *testing.B) {
	const words, total = 4096, 1 << 22
	bulk, scalar := math.Inf(1), math.Inf(1)
	for i := 0; i < b.N; i++ {
		bn, sn := bench.BulkApplyHotPath(words, total)
		bulk = math.Min(bulk, bn)
		scalar = math.Min(scalar, sn)
	}
	b.ReportMetric(bulk, "bulk_ns_per_word")
	b.ReportMetric(scalar, "scalar_ns_per_word")
	if bulk > 0 {
		b.ReportMetric(scalar/bulk, "bulk_speedup_x")
	}
}

// BenchmarkWireIngest measures the fleet aggregator's pipelined
// decode-and-apply throughput on Spatter-mix streams: 8 pre-encoded
// wire streams (distinct processes, so each gets its own apply worker)
// ingested concurrently into one Aggregator, exactly as xplagg's TCP
// path does. Three access mixes cover the apply paths — Range (uniform
// sweeps coalesced into long RLE records: the bulk shadow path), Scalar
// (random indices, one record per element: the per-word path), and
// Gather (gather-local, scalar-heavy with short local runs) — each at
// GOMAXPROCS 1, 2, and 4 so the per-proc worker scaling is measured
// directly. The headline metric is wire access records applied per
// second; the CI floor (Scalar/Cores1) is records_per_sec >= 10M, and
// the multi-core acceptance bar is >= 3x Cores1 at Cores4 on a 4-core
// machine.
func BenchmarkWireIngest(b *testing.B) {
	const (
		nStreams = 8
		elems    = 1 << 18 // element accesses per stream
	)
	mixes := []struct {
		name string
		kind bench.SpatterKind
	}{
		{"Range", bench.SpatterUniform},
		{"Scalar", bench.SpatterRandom},
		{"Gather", bench.SpatterGatherLocal},
	}
	for _, m := range mixes {
		streams := make([][]byte, nStreams)
		var total int64
		for i := range streams {
			var n int64
			streams[i], n = bench.SpatterWireStream(bench.WireMixConfig{
				Spatter: bench.SpatterConfig{
					Kind: m.kind, N: 1 << 16, Count: elems, Seed: int64(i + 1),
				},
				Tenant: "bench", Process: fmt.Sprintf("p%02d", i),
			})
			total += n
		}
		for _, cores := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("%s/Cores%d", m.name, cores), func(b *testing.B) {
				defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(cores))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					g := agg.New()
					var wg sync.WaitGroup
					for _, s := range streams {
						wg.Add(1)
						go func(s []byte) {
							defer wg.Done()
							if err := g.Ingest(bytes.NewReader(s)); err != nil {
								b.Error(err)
							}
						}(s)
					}
					wg.Wait()
					g.Close() // barrier: all enqueued frames applied, workers gone
				}
				b.StopTimer()
				records := float64(b.N) * float64(total)
				b.ReportMetric(records/b.Elapsed().Seconds(), "records_per_sec")
				// One RLE record covers many elements, so the Range mix's
				// real work rate only shows in element terms.
				covered := float64(b.N) * float64(nStreams) * float64(elems)
				b.ReportMetric(covered/b.Elapsed().Seconds(), "elems_per_sec")
			})
		}
	}
}

// BenchmarkTable3Overhead measures the instrumentation overhead on one
// representative workload and the per-access microbenchmark ratio.
func BenchmarkTable3Overhead(b *testing.B) {
	var overhead float64
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table3(bench.DefaultTable3Workloads()[:1])
		if err != nil {
			b.Fatal(err)
		}
		overhead = rows[0].Overhead()
	}
	b.ReportMetric(overhead, "wallclock_overhead_x")
	_, _, ratio := bench.PerAccessOverhead()
	b.ReportMetric(ratio, "per_access_overhead_x")
}
