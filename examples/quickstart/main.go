// Quickstart: allocate managed memory on a simulated CPU/GPU machine,
// write it on the CPU, read it in a GPU kernel, and let XPlacer diagnose
// the access pattern.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"xplacer/internal/core"
	"xplacer/internal/cuda"
	"xplacer/internal/machine"
	"xplacer/internal/memsim"
)

func main() {
	// An instrumented session on the Intel+Pascal platform model.
	s := core.MustSession(machine.IntelPascal())
	ctx := s.Ctx

	// cudaMallocManaged analog: unified memory visible to both devices.
	buf, err := ctx.MallocManaged(1024*8, "data")
	if err != nil {
		panic(err)
	}
	data := memsim.Float64s(buf)

	// The CPU initializes every element...
	host := ctx.Host()
	for i := int64(0); i < data.Len(); i++ {
		data.Store(host, i, float64(i))
	}

	// ...a GPU kernel sums a small slice of it...
	var sum float64
	ctx.LaunchSync("sum_head", func(e *cuda.Exec) {
		for i := int64(0); i < 64; i++ {
			sum += data.Load(e, i)
		}
	})

	// ...and the CPU reads the GPU-visible total back.
	fmt.Printf("sum of first 64 elements: %v\n", sum)
	fmt.Printf("simulated time: %v\n\n", s.SimTime())

	// The diagnostic (the "#pragma xpl diagnostic" analog): the report's
	// C>G column shows the GPU consumed only 128 of the 2048 words the
	// CPU initialized, and the alternating-access detector flags those
	// words (CPU wrote them, the GPU read them).
	s.Diagnostic(os.Stdout, "end of quickstart")
}
