// Plain-Go instrumentation: trace a real Go program's heap accesses with
// the xplrt runtime (what cmd/xplinstr inserts automatically), print the
// XPlacer diagnostic, and derive placement advice.
//
// The program mimics an offload structure: a coordinator goroutine-role
// ("CPU") prepares a work table and buffers, a worker phase ("GPU")
// consumes them. The same anti-patterns the paper finds in CUDA code
// surface here.
//
//	go run ./examples/plaingo
//
// To instrument a file like this automatically instead of writing the
// Trace calls by hand:
//
//	go run ./cmd/xplinstr -o traced.go yourfile.go
package main

import (
	"fmt"
	"os"

	"xplacer/internal/advisor"
	"xplacer/internal/machine"
	"xplacer/xplrt"
)

// workTable mirrors the LULESH domain object: a small struct of pointers
// that both roles touch.
type workTable struct {
	input  []float64
	output []float64
	scale  *float64
}

func main() {
	// Traced allocations (xplinstr would leave your `make` calls alone and
	// you would call xplrt.Register; the helpers do both at once).
	wt := xplrt.New[workTable]("wt")
	wt.input = xplrt.Slice[float64](1024, "input")
	wt.output = xplrt.Slice[float64](1024, "output")
	wt.scale = xplrt.New[float64]("scale")

	// CPU role: initialize everything. (These are the accesses xplinstr
	// would wrap: *xplrt.TraceW(&wt.input[i]) = ...)
	for i := range wt.input {
		*xplrt.TraceW(&wt.input[i]) = float64(i)
	}
	*xplrt.TraceW(wt.scale) = 0.5

	// Worker ("GPU") role: read the table and inputs, write outputs. The
	// device scope is goroutine-local, so several workers could run phases
	// like this concurrently with CPU-role code (xplinstr emits the Scope
	// forms inside functions carrying an //xpl:scope pragma).
	xplrt.OnDevice(xplrt.GPU, func(s *xplrt.DeviceScope) {
		for i := range wt.input {
			in := *xplrt.ScopeR(s, &wt.input[i])
			sc := *xplrt.ScopeR(s, wt.scale)
			*xplrt.ScopeW(s, &wt.output[i]) = in * sc
		}
	})

	// CPU role again: consume a few outputs and nudge the scale — the
	// alternating-access pattern.
	sum := 0.0
	for i := 0; i < 8; i++ {
		sum += *xplrt.TraceR(&wt.output[i])
	}
	*xplrt.TraceRW(wt.scale) *= 1.1
	fmt.Printf("sum of the first outputs: %.1f\n\n", sum)

	// The //xpl:diagnostic pragma expands to exactly this call: verbatim
	// args first, then the expanded pointer descriptions.
	xplrt.TracePrint(os.Stdout, xplrt.ExpandAll(xplrt.Arg(wt, "wt"))...)

	// Re-run traced (TracePrint reset the interval) to feed the advisor a
	// steady-state picture of the alternating allocation.
	xplrt.OnDevice(xplrt.GPU, func(s *xplrt.DeviceScope) {
		_ = *xplrt.ScopeR(s, wt.scale)
		_ = *xplrt.ScopeR(s, &wt.input[1])
	})
	*xplrt.TraceW(wt.scale) = 0.4
	report := xplrt.Report()
	recs := advisor.Recommend(report, advisor.DefaultOptions(machine.IntelPascal()))
	advisor.Render(os.Stdout, recs)
}
