// LULESH walk-through: reproduce the paper's §III-D analysis session —
// run the proxy app with per-timestep diagnostics, inspect the domain
// object's summary and access maps (Figs. 4 and 5), compare the baseline
// against the remedies of §IV-A — then go past the paper: restructure
// the run into an explicit multi-phase timestep loop (solve phases
// interleaved with in-situ analysis phases) and let the closed-loop
// adaptive controller discover per-allocation placements online,
// beating every static whole-run strategy.
//
//	go run ./examples/lulesh
package main

import (
	"fmt"
	"os"

	"xplacer/internal/adapt"
	"xplacer/internal/apps/lulesh"
	"xplacer/internal/core"
	"xplacer/internal/diag"
	"xplacer/internal/machine"
)

func main() {
	plat := machine.IntelPascal()

	// 1. Instrumented run, diagnostics after every timestep (paper: "in
	//    LULESH the diagnostics are called at the end of every timestep").
	s := core.MustSession(plat)
	if _, err := lulesh.Run(s, lulesh.Config{Size: 8, Timesteps: 2, DiagEvery: 1}); err != nil {
		panic(err)
	}
	reports := s.Reports()
	second := reports[len(reports)-1]

	fmt.Println("--- domain object after the second timestep (cf. Fig. 4) ---")
	if dom := second.Find("dom"); dom != nil {
		dom.Text(os.Stdout)
	}
	if mp := second.Find("(dom)->m_p"); mp != nil {
		mp.Text(os.Stdout)
	}
	fmt.Println("findings on the domain object:")
	for _, f := range second.Findings {
		if f.Alloc == "dom" {
			fmt.Printf("  %s\n      remedy: %s\n", f, f.Kind.Remedy())
		}
	}

	// 2. Access maps of the domain object in the steady state (Fig. 5d-f).
	s2 := core.MustSession(plat)
	if _, err := lulesh.Run(s2, lulesh.Config{Size: 8, Timesteps: 2, ResetBefore: 2}); err != nil {
		panic(err)
	}
	for _, a := range s2.Ctx.Space().Live() {
		if a.Label == "dom" {
			e := diag.EntryOf(s2.Tracer, a)
			fmt.Println("\n--- steady-state access maps of dom (cf. Fig. 5d-5f) ---")
			fmt.Println(diag.AccessMap(e, diag.CPUWrites, 64))
			fmt.Println(diag.AccessMap(e, diag.GPUReads, 64))
		}
	}

	// 3. Quantify the remedies (cf. Fig. 6) on this platform.
	fmt.Println("--- remedies vs. baseline (simulated time, size 8, 16 timesteps) ---")
	var base machine.Duration
	for _, v := range lulesh.Variants() {
		r, err := core.Run(plat, false, func(s *core.Session) error {
			_, err := lulesh.Run(s, lulesh.Config{Size: 8, Timesteps: 16, Variant: v})
			return err
		})
		if err != nil {
			panic(err)
		}
		if v == lulesh.Baseline {
			base = r.SimTime
			fmt.Printf("%-12s %12v\n", v, r.SimTime)
			continue
		}
		fmt.Printf("%-12s %12v   speedup %.2fx\n", v, r.SimTime, float64(base)/float64(r.SimTime))
	}

	// 4. Multi-phase timestep loop + closed-loop adaptive placement. The
	//    solver phases want the field arrays at the GPU; the interleaved
	//    in-situ analysis phases scan some of them on the host while GPU
	//    kernels re-read them — no single whole-run placement fits. The
	//    controller analyzes capture windows online and re-places each
	//    allocation mid-run as the phases shift.
	mp := lulesh.MultiPhaseConfig{Elems: 65536, Cycles: 3, SolveSteps: 10, AnalysisSteps: 4}
	fmt.Println("--- multi-phase loop: static placements vs the adaptive controller ---")
	bestStatic := machine.Duration(0)
	for _, pol := range lulesh.StaticPolicies() {
		cfg := mp
		cfg.Static = pol
		r, err := core.Run(plat, false, func(s *core.Session) error {
			_, err := lulesh.RunMultiPhase(s, cfg)
			return err
		})
		if err != nil {
			panic(err)
		}
		if bestStatic == 0 || r.SimTime < bestStatic {
			bestStatic = r.SimTime
		}
		fmt.Printf("static %-14s %12v\n", pol, r.SimTime)
	}
	var rep *adapt.Report
	r, err := core.Run(plat, false, func(s *core.Session) error {
		ctrl := adapt.Attach(s.Ctx, adapt.Config{Window: machine.Millisecond, MinGainPct: 2})
		if _, err := lulesh.RunMultiPhase(s, mp); err != nil {
			return err
		}
		if err := ctrl.Finish(); err != nil {
			return err
		}
		rep = ctrl.Report()
		return nil
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("adaptive              %12v   %.2fx vs best static, %d placement switches\n",
		r.SimTime, float64(bestStatic)/float64(r.SimTime), rep.Switches)
	fmt.Println("controller decision log:")
	rep.Text(os.Stdout)
}
