// Smith-Waterman walk-through: reproduce the paper's §IV-B analysis —
// the end-of-run diagnostic reveals that only the boundary of the
// CPU-initialized H matrix is ever consumed (Fig. 7), per-iteration
// diagnostics reveal the low-density anti-diagonal pattern (Fig. 8), and
// the rotated-matrix optimization wins, especially when the matrices
// exceed GPU memory (Fig. 9).
//
//	go run ./examples/smithwaterman
package main

import (
	"fmt"

	"xplacer/internal/apps/sw"
	"xplacer/internal/core"
	"xplacer/internal/diag"
	"xplacer/internal/machine"
	"xplacer/internal/timeline"
	"xplacer/internal/um"
	"xplacer/internal/whatif"
)

func main() {
	plat := machine.IntelPascal()

	// 1. Analysis at the end of the algorithm (Fig. 7): the whole H matrix
	//    is written by the CPU; the GPU consumes only the boundary zeroes.
	s := core.MustSession(plat)
	if _, err := sw.Run(s, sw.Config{N: 20, M: 10, Seed: 1}); err != nil {
		panic(err)
	}
	for _, a := range s.Ctx.Space().Live() {
		if a.Label == "H" {
			e := diag.EntryOf(s.Tracer, a)
			fmt.Println("H written by the CPU (initialization, cf. Fig. 7a):")
			fmt.Println(diag.AccessMap(e, diag.CPUWrites, 11))
			fmt.Println("CPU-origin values the GPU actually consumed (cf. Fig. 7b):")
			fmt.Println(diag.AccessMap(e, diag.GPUReadsCPUOrigin, 11))
		}
	}

	// 2. Analysis of a single iteration (Fig. 8): a thin anti-diagonal.
	s2 := core.MustSession(plat)
	if _, err := sw.Run(s2, sw.Config{N: 20, M: 10, Seed: 1, StopAfter: 8, ResetBefore: 8}); err != nil {
		panic(err)
	}
	for _, a := range s2.Ctx.Space().Live() {
		if a.Label == "H" {
			e := diag.EntryOf(s2.Tracer, a)
			fmt.Println("GPU writes in iteration 8 (cf. Fig. 8a):")
			fmt.Println(diag.AccessMap(e, diag.GPUWrites, 11))
		}
	}

	// 3. The optimization (Fig. 9): rotate the matrix 45 degrees so each
	//    iteration accesses contiguous memory. Compare at an in-memory
	//    size and at an over-subscribed size.
	fmt.Println("rotated-matrix speedup (simulated time):")
	for _, cse := range []struct {
		label   string
		n       int
		gpuMemX float64 // GPU memory as a multiple of the matrix footprint
	}{
		{"fits in GPU memory", 256, 4.0},
		{"exceeds GPU memory", 256, 0.6},
	} {
		p := plat.Clone()
		p.GPUMemory = int64(float64(sw.FootprintBytes(cse.n, cse.n)) * cse.gpuMemX)
		var times [2]machine.Duration
		for i, rotated := range []bool{false, true} {
			rotated := rotated
			r, err := core.Run(p, false, func(s *core.Session) error {
				_, err := sw.Run(s, sw.Config{N: cse.n, M: cse.n, Seed: 11, Rotated: rotated})
				return err
			})
			if err != nil {
				panic(err)
			}
			times[i] = r.SimTime
		}
		fmt.Printf("  %-22s baseline %12v  rotated %12v  speedup %.2fx\n",
			cse.label, times[0], times[1], float64(times[0])/float64(times[1]))
	}

	// 4. What-if: instead of hand-deriving a fix, capture the baseline
	//    run's access aggregates, let the replay engine rank candidate
	//    placements, then apply the winning assignment and compare the
	//    prediction with the measured re-run.
	swCfg := sw.Config{N: 256, M: 256, Seed: 11}
	var events []timeline.Event
	if _, err := core.Run(plat, false, func(s *core.Session) error {
		s.Ctx.SetWhatIfCapture(true)
		if _, err := sw.Run(s, swCfg); err != nil {
			return err
		}
		s.Ctx.MarkDiagnostic("end of capture")
		events = s.Ctx.Timeline().Events()
		return nil
	}); err != nil {
		panic(err)
	}
	res, err := whatif.Analyze(events, plat)
	if err != nil {
		panic(err)
	}
	fmt.Printf("what-if: observed %v, best assignment %v predicts %v (%+.1f%%)\n",
		res.Observed, res.BestPolicies, res.BestPredicted,
		100*float64(res.BestPredicted-res.Observed)/float64(res.Observed))
	applied, err := core.Run(plat, false, func(s *core.Session) error {
		for label, pol := range res.BestPolicies {
			p, err := um.PlacementByName(pol)
			if err != nil {
				return err
			}
			s.Ctx.SetPlacement(label, p)
		}
		_, err := sw.Run(s, swCfg)
		return err
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("applied: measured %v (prediction off by %+.1f%%)\n", applied.SimTime,
		100*float64(res.BestPredicted-applied.SimTime)/float64(applied.SimTime))
}
