// Pathfinder walk-through: reproduce the paper's §IV-C transfer-overlap
// study — per-iteration diagnostics show that each kernel reads only a
// slice of the up-front-transferred gpuWall (Fig. 10), so the optimized
// version transfers sections asynchronously, overlapped with compute;
// the benefit depends on the interconnect (Fig. 11).
//
//	go run ./examples/pathfinder
package main

import (
	"fmt"

	"xplacer/internal/apps/rodinia"
	"xplacer/internal/core"
	"xplacer/internal/diag"
	"xplacer/internal/machine"
	"xplacer/internal/timeline"
	"xplacer/internal/um"
	"xplacer/internal/whatif"
)

func main() {
	// 1. Access maps: the wall is transferred whole, each iteration reads
	//    a fifth of it (cf. Fig. 10).
	for _, it := range []int{1, 5} {
		s := core.MustSession(machine.IntelPascal())
		cfg := rodinia.PathfinderConfig{
			Cols: 64, Rows: 11, Pyramid: 2, Seed: 3,
			StopAfter: it, ResetBefore: it,
		}
		if _, err := rodinia.RunPathfinder(s, cfg); err != nil {
			panic(err)
		}
		for _, a := range s.Ctx.Space().Live() {
			if a.Label == "gpuWall" {
				e := diag.EntryOf(s.Tracer, a)
				fmt.Printf("GPU reads of the CPU-produced wall, iteration %d (cf. Fig. 10):\n", it)
				fmt.Println(diag.AccessMap(e, diag.GPUReadsCPUOrigin, 64))
			}
		}
	}

	// 2. The overlap optimization on both interconnects (cf. Fig. 11): it
	//    pays off over PCIe and much less (or not at all) over NVLink.
	cfg := rodinia.PathfinderConfig{Cols: 8192, Rows: 600, Pyramid: 20, Seed: 13}
	for _, plat := range []*machine.Platform{machine.IntelPascal(), machine.IBMVolta()} {
		var times [2]machine.Duration
		for i, overlap := range []bool{false, true} {
			c := cfg
			c.Overlap = overlap
			r, err := core.Run(plat, false, func(s *core.Session) error {
				_, err := rodinia.RunPathfinder(s, c)
				return err
			})
			if err != nil {
				panic(err)
			}
			times[i] = r.SimTime
		}
		fmt.Printf("%-14s baseline %12v  overlapped %12v  speedup %.2fx\n",
			plat.Name, times[0], times[1], float64(times[0])/float64(times[1]))
	}

	// 3. What-if: capture the baseline run's access aggregates, let the
	//    replay engine rank candidate placements per allocation, then apply
	//    the winning assignment and compare prediction with measurement.
	plat := machine.IntelPascal()
	var events []timeline.Event
	if _, err := core.Run(plat, false, func(s *core.Session) error {
		s.Ctx.SetWhatIfCapture(true)
		if _, err := rodinia.RunPathfinder(s, cfg); err != nil {
			return err
		}
		s.Ctx.MarkDiagnostic("end of capture")
		events = s.Ctx.Timeline().Events()
		return nil
	}); err != nil {
		panic(err)
	}
	res, err := whatif.Analyze(events, plat)
	if err != nil {
		panic(err)
	}
	fmt.Printf("what-if: observed %v, best assignment %v predicts %v (%+.1f%%)\n",
		res.Observed, res.BestPolicies, res.BestPredicted,
		100*float64(res.BestPredicted-res.Observed)/float64(res.Observed))
	applied, err := core.Run(plat, false, func(s *core.Session) error {
		for label, pol := range res.BestPolicies {
			p, err := um.PlacementByName(pol)
			if err != nil {
				return err
			}
			s.Ctx.SetPlacement(label, p)
		}
		_, err := rodinia.RunPathfinder(s, cfg)
		return err
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("applied: measured %v (prediction off by %+.1f%%)\n", applied.SimTime,
		100*float64(res.BestPredicted-applied.SimTime)/float64(applied.SimTime))
}
